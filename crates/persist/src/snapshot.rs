//! Versioned, checksummed snapshot files with atomic publication.
//!
//! # File layout (version 1)
//!
//! ```text
//! magic           8 bytes   b"PCSNAP\0\x01"  (version in the last byte)
//! epoch           u64       ingest epoch the snapshot captures
//! section count   u32
//! header CRC32    u32       over the 20 bytes above
//! per section:
//!   tag           u32       four-CC ("CONF", "STOR", "WGTS", …)
//!   length        u32       payload bytes
//!   section CRC32 u32       over tag ‖ length ‖ payload
//!   payload       `length` bytes
//! ```
//!
//! Everything multi-byte is little-endian. Each section carries its own CRC
//! so a single flipped bit anywhere — header or body — is detected; a
//! truncated file fails the bounds-checked section reads.
//!
//! # Publication and generations
//!
//! A snapshot is **published atomically**: written to `snapshot-<epoch>.tmp`,
//! fsynced, renamed to `snapshot-<epoch>.snap`, then the directory is fsynced
//! so the rename itself is durable. A crash at any point leaves either the
//! previous generation set untouched or a stray `.tmp` that is ignored (and
//! cleaned up by the next successful snapshot). Published files are therefore
//! never torn by the writer — the torn/bit-flip cases recovery handles come
//! from storage-level corruption, which the CRCs catch.
//!
//! The newest [`KEEP_GENERATIONS`] snapshots are retained; loading walks them
//! newest-first and takes the first one that decodes cleanly, counting the
//! skipped generations for the recovery report.

use crate::crc::{crc32, crc32_parts};
use crate::error::PersistError;
use crate::format::{put_u32, put_u64, Cursor, MAX_LEN};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic prefix of a version-1 snapshot file; the final byte is the format
/// version.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"PCSNAP\x00\x01";

/// Magic prefix of a version-2 snapshot file: version 1 plus the optional
/// regime sections ([`section::REGIME_STORE`], [`section::REGIME_WEIGHTS`]).
/// The writer emits version 2 only when a regime section is present, so an
/// all-traffic deployment keeps producing byte-identical version-1 images;
/// the reader accepts both versions (a v1 image simply decodes with no
/// regime sections, i.e. as single-regime all-traffic state).
pub const SNAPSHOT_MAGIC_V2: [u8; 8] = *b"PCSNAP\x00\x02";

/// How many published snapshot generations are kept on disk.
pub const KEEP_GENERATIONS: usize = 2;

/// Section tag four-CCs.
pub mod section {
    /// Configuration fingerprint bytes.
    pub const CONFIG: u32 = u32::from_le_bytes(*b"CONF");
    /// The trajectory store's matched-trajectory list.
    pub const STORE: u32 = u32::from_le_bytes(*b"STOR");
    /// The weight function's variables + fallback units.
    pub const WEIGHTS: u32 = u32::from_le_bytes(*b"WGTS");
    /// Per-trajectory regime tags, parallel to the STOR trajectory order
    /// (version 2, present only when some trajectory is regime-tagged).
    pub const REGIME_STORE: u32 = u32::from_le_bytes(*b"RGST");
    /// The regime schema plus per-regime own variable tables (version 2,
    /// present only when the weight function carries regime state).
    pub const REGIME_WEIGHTS: u32 = u32::from_le_bytes(*b"RGWT");
}

/// A decoded snapshot: the epoch it captured plus its raw sections.
#[derive(Debug)]
pub struct Snapshot {
    /// Ingest epoch at which the snapshot was taken.
    pub epoch: u64,
    /// `(tag, payload)` pairs in file order.
    pub sections: Vec<(u32, Vec<u8>)>,
}

impl Snapshot {
    /// The payload of the section with this tag, if present.
    pub fn section(&self, tag: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| payload.as_slice())
    }
}

/// The file name of the published snapshot for `epoch`.
fn snapshot_name(epoch: u64) -> String {
    format!("snapshot-{epoch:016x}.snap")
}

/// Parses an epoch out of a published snapshot file name.
fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snapshot-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Writes snapshot files and manages the retained generation set.
pub struct SnapshotWriter {
    dir: PathBuf,
}

impl SnapshotWriter {
    /// Creates the state directory if needed.
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, PersistError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotWriter { dir })
    }

    /// Serialises `sections` into a snapshot image — version 2 when a
    /// regime section is present, the byte-identical version 1 otherwise.
    fn encode(epoch: u64, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
        let has_regimes = sections
            .iter()
            .any(|(tag, _)| *tag == section::REGIME_STORE || *tag == section::REGIME_WEIGHTS);
        let body: usize = sections.iter().map(|(_, p)| 12 + p.len()).sum();
        let mut out = Vec::with_capacity(24 + body);
        out.extend_from_slice(if has_regimes {
            &SNAPSHOT_MAGIC_V2
        } else {
            &SNAPSHOT_MAGIC
        });
        put_u64(&mut out, epoch);
        put_u32(&mut out, sections.len() as u32);
        let header_crc = crc32(&out);
        put_u32(&mut out, header_crc);
        for (tag, payload) in sections {
            let mut frame = [0u8; 8];
            frame[..4].copy_from_slice(&tag.to_le_bytes());
            frame[4..].copy_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(&frame);
            put_u32(&mut out, crc32_parts(&[&frame, payload]));
            out.extend_from_slice(payload);
        }
        out
    }

    /// Atomically publishes a snapshot for `epoch` and prunes old
    /// generations. Returns the number of bytes written.
    ///
    /// Ordering is the crash-safety contract: temp write → file fsync →
    /// rename → directory fsync → prune. Only after the directory fsync is
    /// the new generation durable, and pruning strictly follows publication,
    /// so at every instant at least one complete published generation exists
    /// (once one ever has).
    pub fn publish(&self, epoch: u64, sections: &[(u32, Vec<u8>)]) -> Result<u64, PersistError> {
        if let Some(fault) = crate::faults::take_injected_failure() {
            return Err(fault);
        }
        let image = Self::encode(epoch, sections);
        let tmp = self.dir.join(format!("snapshot-{epoch:016x}.tmp"));
        let published = self.dir.join(snapshot_name(epoch));
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&image)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &published)?;
        sync_dir(&self.dir)?;
        self.prune()?;
        Ok(image.len() as u64)
    }

    /// Removes all but the newest [`KEEP_GENERATIONS`] published snapshots,
    /// plus any stray `.tmp` left by a crashed publication attempt.
    fn prune(&self) -> Result<(), PersistError> {
        let mut epochs = list_generations(&self.dir)?;
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        for &old in epochs.iter().skip(KEEP_GENERATIONS) {
            let _ = fs::remove_file(self.dir.join(snapshot_name(old)));
        }
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("snapshot-") && name.ends_with(".tmp") {
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(())
    }
}

/// The epochs of every published snapshot in `dir`, unsorted.
pub fn list_generations(dir: &Path) -> Result<Vec<u64>, PersistError> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(epoch) = parse_snapshot_name(&entry.file_name().to_string_lossy()) {
            out.push(epoch);
        }
    }
    Ok(out)
}

/// Reads and validates published snapshots.
pub struct SnapshotReader;

impl SnapshotReader {
    /// Decodes and CRC-validates one snapshot file.
    pub fn read(path: &Path) -> Result<Snapshot, PersistError> {
        let image = fs::read(path)?;
        Self::decode(&image)
    }

    /// Decodes a snapshot image, validating magic, version, header CRC and
    /// every section CRC. Never panics on arbitrary bytes.
    pub fn decode(image: &[u8]) -> Result<Snapshot, PersistError> {
        let mut c = Cursor::new(image, "snapshot header");
        let magic = c.take(8)?;
        if magic != SNAPSHOT_MAGIC && magic != SNAPSHOT_MAGIC_V2 {
            return Err(PersistError::corrupt(
                "snapshot header",
                format!("bad magic {magic:02x?}"),
            ));
        }
        let epoch = c.u64()?;
        let section_count = c.u32()?;
        let declared_crc = c.u32()?;
        let actual_crc = crc32(&image[..20]);
        if declared_crc != actual_crc {
            return Err(PersistError::corrupt(
                "snapshot header",
                format!("header CRC {declared_crc:08x} != {actual_crc:08x}"),
            ));
        }
        if section_count > 64 {
            return Err(PersistError::corrupt(
                "snapshot header",
                format!("implausible section count {section_count}"),
            ));
        }
        let mut sections = Vec::with_capacity(section_count as usize);
        for _ in 0..section_count {
            let tag = c.u32()?;
            let len = c.u32()?;
            if len > MAX_LEN {
                return Err(PersistError::corrupt(
                    "snapshot section",
                    format!("implausible section length {len}"),
                ));
            }
            let declared = c.u32()?;
            let payload = c.take(len as usize)?;
            let mut frame = [0u8; 8];
            frame[..4].copy_from_slice(&tag.to_le_bytes());
            frame[4..].copy_from_slice(&len.to_le_bytes());
            let actual = crc32_parts(&[&frame, payload]);
            if declared != actual {
                return Err(PersistError::corrupt(
                    "snapshot section",
                    format!("section {tag:08x} CRC {declared:08x} != {actual:08x}"),
                ));
            }
            sections.push((tag, payload.to_vec()));
        }
        c.finish()?;
        Ok(Snapshot { epoch, sections })
    }

    /// Loads the newest snapshot in `dir` that decodes cleanly, walking
    /// generations newest-first and skipping (counting) corrupt ones.
    /// Returns `None` when no generation is loadable — with the skip count,
    /// so the caller can distinguish "empty state dir" (`0` skipped) from
    /// "every generation corrupt".
    pub fn load_latest(dir: &Path) -> Result<(Option<Snapshot>, usize), PersistError> {
        let mut epochs = list_generations(dir)?;
        epochs.sort_unstable_by(|a, b| b.cmp(a));
        let mut skipped = 0;
        for &epoch in &epochs {
            match Self::read(&dir.join(snapshot_name(epoch))) {
                Ok(snapshot) => {
                    // The file name is untrusted; the authoritative epoch is
                    // the CRC-protected header field.
                    return Ok((Some(snapshot), skipped));
                }
                Err(PersistError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    skipped += 1;
                }
                Err(_) => skipped += 1,
            }
        }
        Ok((None, skipped))
    }
}

/// Fsyncs a directory so a completed rename is durable. On platforms where
/// directories cannot be fsynced the error is ignored — the rename itself is
/// still atomic, only its durability timing weakens.
fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    match File::open(dir) {
        Ok(f) => {
            let _ = f.sync_all();
            Ok(())
        }
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pathcost-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sections() -> Vec<(u32, Vec<u8>)> {
        vec![
            (section::CONFIG, b"cfg".to_vec()),
            (section::STORE, vec![1, 2, 3, 4, 5]),
            (section::WEIGHTS, vec![9; 1000]),
        ]
    }

    #[test]
    fn publish_load_round_trip() {
        let dir = temp_dir("roundtrip");
        let w = SnapshotWriter::new(&dir).unwrap();
        w.publish(7, &sections()).unwrap();
        let (snap, skipped) = SnapshotReader::load_latest(&dir).unwrap();
        let snap = snap.expect("published snapshot loads");
        assert_eq!(skipped, 0);
        assert_eq!(snap.epoch, 7);
        assert_eq!(snap.section(section::STORE), Some(&[1u8, 2, 3, 4, 5][..]));
        assert_eq!(snap.section(section::CONFIG), Some(&b"cfg"[..]));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn keeps_two_generations_and_prunes_older() {
        let dir = temp_dir("generations");
        let w = SnapshotWriter::new(&dir).unwrap();
        for epoch in 1..=5 {
            w.publish(epoch, &sections()).unwrap();
        }
        let mut gens = list_generations(&dir).unwrap();
        gens.sort_unstable();
        assert_eq!(gens, vec![4, 5]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn regime_sections_bump_the_version_byte() {
        let v1 = SnapshotWriter::encode(3, &sections());
        assert_eq!(v1[7], 1, "regime-free images stay version 1");
        let mut with_regimes = sections();
        with_regimes.push((section::REGIME_STORE, vec![0, 1]));
        with_regimes.push((section::REGIME_WEIGHTS, vec![2, 3]));
        let v2 = SnapshotWriter::encode(3, &with_regimes);
        assert_eq!(v2[7], 2, "regime sections force version 2");
        let snap = SnapshotReader::decode(&v2).expect("v2 decodes");
        assert_eq!(snap.section(section::REGIME_STORE), Some(&[0u8, 1][..]));
        assert_eq!(snap.section(section::REGIME_WEIGHTS), Some(&[2u8, 3][..]));
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let image = SnapshotWriter::encode(3, &sections());
        assert!(SnapshotReader::decode(&image).is_ok());
        for i in 0..image.len() {
            let mut bad = image.clone();
            bad[i] ^= 0x01;
            assert!(
                SnapshotReader::decode(&bad).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let image = SnapshotWriter::encode(3, &sections());
        for cut in 0..image.len() {
            assert!(
                SnapshotReader::decode(&image[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn corrupt_latest_falls_back_to_previous_generation() {
        let dir = temp_dir("fallback");
        let w = SnapshotWriter::new(&dir).unwrap();
        w.publish(1, &sections()).unwrap();
        w.publish(2, &sections()).unwrap();
        // Flip one byte in the newest published file.
        let latest = dir.join(snapshot_name(2));
        let mut bytes = fs::read(&latest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&latest, &bytes).unwrap();
        let (snap, skipped) = SnapshotReader::load_latest(&dir).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(snap.expect("previous generation loads").epoch, 1);
        // Both generations corrupt → None, both counted.
        let prev = dir.join(snapshot_name(1));
        let mut bytes = fs::read(&prev).unwrap();
        bytes[0] ^= 0xFF;
        fs::write(&prev, &bytes).unwrap();
        let (snap, skipped) = SnapshotReader::load_latest(&dir).unwrap();
        assert!(snap.is_none());
        assert_eq!(skipped, 2);
        // An empty directory reports zero skips.
        let empty = temp_dir("empty");
        let (snap, skipped) = SnapshotReader::load_latest(&empty).unwrap();
        assert!(snap.is_none());
        assert_eq!(skipped, 0);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&empty).unwrap();
    }

    #[test]
    fn stray_tmp_files_are_ignored_and_cleaned_up() {
        let dir = temp_dir("straytmp");
        let w = SnapshotWriter::new(&dir).unwrap();
        fs::write(dir.join("snapshot-00000000000000aa.tmp"), b"torn write").unwrap();
        let (snap, _) = SnapshotReader::load_latest(&dir).unwrap();
        assert!(snap.is_none(), "a .tmp must never be loaded");
        w.publish(1, &sections()).unwrap();
        assert!(
            !dir.join("snapshot-00000000000000aa.tmp").exists(),
            "publication cleans up stray temp files"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
