//! Little-endian primitive encoding and a bounds-checked decode cursor.
//!
//! Every multi-byte integer is little-endian; every `f64` travels as its
//! IEEE-754 bit pattern (`to_bits`/`from_bits`), which is what makes restored
//! state *bit-identical* — no decimal round-trip is ever involved. Lengths
//! are `u32` (no section in this system approaches 4 GiB) and every read is
//! bounds-checked so corrupt lengths surface as [`PersistError::Corrupt`],
//! never as a panic or an out-of-bounds slice.

use crate::error::PersistError;

/// Upper bound on any single decoded collection length. Snapshots of real
/// deployments are far below this; a corrupt length field must not convince
/// the decoder to pre-allocate gigabytes.
pub const MAX_LEN: u32 = 64 * 1024 * 1024;

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Writes a collection length after checking it against [`MAX_LEN`].
pub fn put_len(out: &mut Vec<u8>, len: usize) {
    debug_assert!(len <= MAX_LEN as usize, "collection too large to persist");
    put_u32(out, len as u32);
}

/// A bounds-checked read cursor over a decode buffer.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    /// Names the structure being decoded in error messages.
    context: &'static str,
}

impl<'a> Cursor<'a> {
    pub fn new(buf: &'a [u8], context: &'static str) -> Self {
        Cursor {
            buf,
            pos: 0,
            context,
        }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails the decode with a truncation error.
    fn truncated(&self, want: usize) -> PersistError {
        PersistError::corrupt(
            self.context,
            format!(
                "truncated: wanted {want} more bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            ),
        )
    }

    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(self.truncated(n));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    pub fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a collection length, rejecting absurd values so a flipped
    /// length byte cannot trigger a huge allocation.
    pub fn read_len(&mut self) -> Result<usize, PersistError> {
        let len = self.u32()?;
        if len > MAX_LEN {
            return Err(PersistError::corrupt(
                self.context,
                format!("implausible collection length {len}"),
            ));
        }
        Ok(len as usize)
    }

    /// Asserts the buffer was consumed exactly — trailing garbage means the
    /// image does not match the format version that is decoding it.
    pub fn finish(self) -> Result<(), PersistError> {
        if self.remaining() != 0 {
            return Err(PersistError::corrupt(
                self.context,
                format!("{} trailing bytes after decode", self.remaining()),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 513);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::from_bits(0x0000_0000_0000_0001)); // subnormal
        let mut c = Cursor::new(&buf, "test");
        assert_eq!(c.u8().unwrap(), 7);
        assert_eq!(c.u16().unwrap(), 513);
        assert_eq!(c.u32().unwrap(), 70_000);
        assert_eq!(c.u64().unwrap(), u64::MAX - 1);
        assert_eq!(c.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(c.f64().unwrap().to_bits(), 1);
        c.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_errors_not_panics() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 9);
        let mut c = Cursor::new(&buf[..2], "test");
        assert!(c.u32().is_err());
        let mut c = Cursor::new(&buf, "test");
        c.u16().unwrap();
        assert!(c.finish().is_err());
    }

    #[test]
    fn implausible_lengths_are_rejected() {
        let mut buf = Vec::new();
        put_u32(&mut buf, MAX_LEN + 1);
        assert!(Cursor::new(&buf, "test").read_len().is_err());
    }
}
