//! Test-only IO fault injection for chaos and recovery tests.
//!
//! The chaos harness needs to fail journal appends and snapshot publishes
//! *inside* a live server without touching the filesystem, so the hook lives
//! in the library rather than behind a test-only trait object on the hot
//! path. A single process-global counter arms "fail the next N IO
//! operations"; [`Journal::append`](crate::Journal::append),
//! [`Journal::rotate`](crate::Journal::rotate) and
//! [`SnapshotWriter::publish`](crate::SnapshotWriter::publish) consult it
//! before doing any IO and return a synthetic [`PersistError::Io`] while it
//! is armed.
//!
//! Cost when disarmed is one relaxed atomic load per operation — noise next
//! to the fsync those operations perform. The counter is process-global, so
//! tests using it must not run concurrently with other persistence tests in
//! the same process (the chaos harness is a separate integration-test
//! binary, which gives it its own process).

use crate::error::PersistError;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};

static INJECTED_IO_FAILURES: AtomicU64 = AtomicU64::new(0);

/// Arms the failpoint: the next `n` guarded IO operations (journal append /
/// rotate, snapshot publish) fail with a synthetic [`PersistError::Io`].
/// Replaces any previously armed count.
pub fn inject_io_errors(n: u64) {
    INJECTED_IO_FAILURES.store(n, Ordering::Relaxed);
}

/// Disarms the failpoint immediately.
pub fn clear_io_errors() {
    INJECTED_IO_FAILURES.store(0, Ordering::Relaxed);
}

/// How many injected failures remain armed.
pub fn armed_io_errors() -> u64 {
    INJECTED_IO_FAILURES.load(Ordering::Relaxed)
}

/// Consumes one armed failure, if any. Called by the guarded operations;
/// returns the error the operation should fail with.
pub(crate) fn take_injected_failure() -> Option<PersistError> {
    // Fast path: disarmed (the overwhelmingly common case).
    if INJECTED_IO_FAILURES.load(Ordering::Relaxed) == 0 {
        return None;
    }
    let mut current = INJECTED_IO_FAILURES.load(Ordering::Relaxed);
    while current > 0 {
        match INJECTED_IO_FAILURES.compare_exchange_weak(
            current,
            current - 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                return Some(PersistError::Io(io::Error::other(
                    "injected IO fault (pathcost_persist::faults)",
                )));
            }
            Err(observed) => current = observed,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn injection_fails_exactly_n_operations() {
        clear_io_errors();
        assert!(take_injected_failure().is_none());
        inject_io_errors(2);
        assert_eq!(armed_io_errors(), 2);
        assert!(take_injected_failure().is_some());
        assert!(take_injected_failure().is_some());
        assert!(take_injected_failure().is_none());
        assert_eq!(armed_io_errors(), 0);
    }

    #[test]
    fn clear_disarms_pending_failures() {
        inject_io_errors(5);
        clear_io_errors();
        assert!(take_injected_failure().is_none());
    }
}
