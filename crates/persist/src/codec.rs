//! Binary codecs for the persisted domain objects.
//!
//! The encoding is deliberately dumb: field-by-field little-endian, `f64`s
//! as raw bit patterns, collections length-prefixed. Dumb is what makes the
//! round trip *bit-identical* — the recovery oracle in `tests/crash_recovery.rs`
//! asserts exact equality of every histogram probability, so no codec in this
//! module may ever normalise, reorder or re-derive anything. Reconstruction
//! goes through the non-normalising raw-parts constructors
//! ([`Histogram1D::from_raw_parts`], [`HistogramNd::from_raw_parts`]) for the
//! same reason.

use crate::error::PersistError;
use crate::format::{put_f64, put_len, put_u16, put_u32, put_u64, put_u8, Cursor};
use pathcost_core::{HybridConfig, InstantiatedVariable, IntervalId, VariableSource};
use pathcost_hist::{Bucket, Histogram1D, HistogramNd};
use pathcost_roadnet::{EdgeId, Path};
use pathcost_traj::{CostKind, MatchedTrajectory, RegimeId, RegimeSchema, Timestamp};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Paths and trajectories
// ---------------------------------------------------------------------------

fn put_path(out: &mut Vec<u8>, path: &Path) {
    put_len(out, path.cardinality());
    for e in path.edges() {
        put_u32(out, e.0);
    }
}

fn read_path(c: &mut Cursor<'_>) -> Result<Path, PersistError> {
    let n = c.read_len()?;
    if n == 0 {
        return Err(PersistError::corrupt("path", "zero-edge path"));
    }
    let mut edges = Vec::with_capacity(n);
    for _ in 0..n {
        edges.push(EdgeId(c.u32()?));
    }
    Ok(Path::from_edges_unchecked(edges))
}

pub fn put_trajectory(out: &mut Vec<u8>, m: &MatchedTrajectory) {
    put_u64(out, m.id);
    put_path(out, &m.path);
    for t in &m.entry_times {
        put_f64(out, t.0);
    }
    for &t in &m.travel_times {
        put_f64(out, t);
    }
    for &v in &m.avg_speeds_mps {
        put_f64(out, v);
    }
}

pub fn read_trajectory(c: &mut Cursor<'_>) -> Result<MatchedTrajectory, PersistError> {
    let id = c.u64()?;
    let path = read_path(c)?;
    let n = path.cardinality();
    let mut entry_times = Vec::with_capacity(n);
    for _ in 0..n {
        entry_times.push(Timestamp(c.f64()?));
    }
    let mut travel_times = Vec::with_capacity(n);
    for _ in 0..n {
        travel_times.push(c.f64()?);
    }
    let mut avg_speeds_mps = Vec::with_capacity(n);
    for _ in 0..n {
        avg_speeds_mps.push(c.f64()?);
    }
    // Trajectory bytes are regime-free for v1 compatibility: regime tags
    // travel in their own section/record (see `put_regime_tags`), and an
    // image without one decodes as all-global traffic.
    Ok(MatchedTrajectory {
        id,
        path,
        entry_times,
        travel_times,
        avg_speeds_mps,
        regime: RegimeId::ALL_TRAFFIC,
    })
}

/// Encodes a batch of trajectories (snapshot store section / journal append).
pub fn put_trajectories(out: &mut Vec<u8>, batch: &[MatchedTrajectory]) {
    put_len(out, batch.len());
    for m in batch {
        put_trajectory(out, m);
    }
}

pub fn read_trajectories(c: &mut Cursor<'_>) -> Result<Vec<MatchedTrajectory>, PersistError> {
    let n = c.read_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_trajectory(c)?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Regimes
// ---------------------------------------------------------------------------

/// Encodes the regime tag of each trajectory in `batch`, in batch order —
/// the side-channel that keeps [`put_trajectory`] bytes v1-compatible.
pub fn put_regime_tags(out: &mut Vec<u8>, batch: &[MatchedTrajectory]) {
    put_len(out, batch.len());
    for m in batch {
        put_u16(out, m.regime.0);
    }
}

/// The decoded counterpart of [`put_regime_tags`].
pub fn read_regime_tags(c: &mut Cursor<'_>) -> Result<Vec<RegimeId>, PersistError> {
    let n = c.read_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(RegimeId(c.u16()?));
    }
    Ok(out)
}

/// Encodes a regime fallback schema as its ordered `(regime, group)` entries.
pub fn put_regime_schema(out: &mut Vec<u8>, schema: &RegimeSchema) {
    let entries: Vec<_> = schema.entries().collect();
    put_len(out, entries.len());
    for (regime, group) in entries {
        put_u16(out, regime.0);
        put_u16(out, group.0);
    }
}

pub fn read_regime_schema(c: &mut Cursor<'_>) -> Result<RegimeSchema, PersistError> {
    let n = c.read_len()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let regime = RegimeId(c.u16()?);
        let group = RegimeId(c.u16()?);
        entries.push((regime, group));
    }
    Ok(RegimeSchema::from_entries(entries))
}

/// Encodes the per-regime own variable tables of a weight function, in
/// ascending regime order (the `BTreeMap` iteration order, so identical
/// functions always produce identical bytes).
pub fn put_regime_tables(
    out: &mut Vec<u8>,
    tables: &BTreeMap<RegimeId, Vec<InstantiatedVariable>>,
) {
    put_len(out, tables.len());
    for (regime, variables) in tables {
        put_u16(out, regime.0);
        put_len(out, variables.len());
        for v in variables {
            put_variable(out, v);
        }
    }
}

pub fn read_regime_tables(
    c: &mut Cursor<'_>,
) -> Result<BTreeMap<RegimeId, Vec<InstantiatedVariable>>, PersistError> {
    let n = c.read_len()?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let regime = RegimeId(c.u16()?);
        let len = c.read_len()?;
        let mut variables = Vec::with_capacity(len);
        for _ in 0..len {
            variables.push(read_variable(c)?);
        }
        if out.insert(regime, variables).is_some() {
            return Err(PersistError::corrupt(
                "regime tables",
                format!("duplicate regime {}", regime.0),
            ));
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

fn put_buckets(out: &mut Vec<u8>, buckets: &[Bucket]) {
    put_len(out, buckets.len());
    for b in buckets {
        put_f64(out, b.lo);
        put_f64(out, b.hi);
    }
}

fn read_buckets(c: &mut Cursor<'_>) -> Result<Vec<Bucket>, PersistError> {
    let n = c.read_len()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let lo = c.f64()?;
        let hi = c.f64()?;
        // Validated reconstruction: a flipped bound byte must surface as a
        // decode error, not as a NaN bucket inside a live histogram.
        out.push(Bucket::new(lo, hi)?);
    }
    Ok(out)
}

pub fn put_histogram1d(out: &mut Vec<u8>, h: &Histogram1D) {
    put_buckets(out, h.buckets());
    for &p in h.probs() {
        put_f64(out, p);
    }
}

pub fn read_histogram1d(c: &mut Cursor<'_>) -> Result<Histogram1D, PersistError> {
    let buckets = read_buckets(c)?;
    let mut probs = Vec::with_capacity(buckets.len());
    for _ in 0..buckets.len() {
        probs.push(c.f64()?);
    }
    Ok(Histogram1D::from_raw_parts(buckets, probs)?)
}

pub fn put_histogram_nd(out: &mut Vec<u8>, h: &HistogramNd) {
    put_len(out, h.axes().len());
    for axis in h.axes() {
        put_buckets(out, axis);
    }
    put_len(out, h.cells().len());
    for (key, p) in h.cells() {
        for &idx in key {
            put_u32(out, idx);
        }
        put_f64(out, *p);
    }
}

pub fn read_histogram_nd(c: &mut Cursor<'_>) -> Result<HistogramNd, PersistError> {
    let dims = c.read_len()?;
    let mut axes = Vec::with_capacity(dims);
    for _ in 0..dims {
        axes.push(read_buckets(c)?);
    }
    let cells_len = c.read_len()?;
    let mut cells = Vec::with_capacity(cells_len);
    for _ in 0..cells_len {
        let mut key = Vec::with_capacity(dims);
        for _ in 0..dims {
            key.push(c.u32()?);
        }
        let p = c.f64()?;
        cells.push((key, p));
    }
    Ok(HistogramNd::from_raw_parts(axes, cells)?)
}

// ---------------------------------------------------------------------------
// Weight-function parts
// ---------------------------------------------------------------------------

fn put_variable(out: &mut Vec<u8>, v: &InstantiatedVariable) {
    put_path(out, &v.path);
    put_u16(out, v.interval.0);
    match v.source {
        VariableSource::Trajectories { count } => {
            put_u8(out, 0);
            put_u64(out, count as u64);
        }
        VariableSource::SpeedLimit => put_u8(out, 1),
    }
    put_histogram_nd(out, &v.histogram);
}

fn read_variable(c: &mut Cursor<'_>) -> Result<InstantiatedVariable, PersistError> {
    let path = read_path(c)?;
    let interval = IntervalId(c.u16()?);
    let source = match c.u8()? {
        0 => VariableSource::Trajectories {
            count: c.u64()? as usize,
        },
        1 => VariableSource::SpeedLimit,
        tag => {
            return Err(PersistError::corrupt(
                "variable source",
                format!("unknown tag {tag}"),
            ))
        }
    };
    let histogram = read_histogram_nd(c)?;
    Ok(InstantiatedVariable {
        path,
        interval,
        histogram,
        source,
    })
}

/// Encodes the variable list plus per-edge fallbacks of a weight function.
/// Fallbacks arrive as a pre-sorted `(edge, histogram)` list — the caller
/// sorts by edge id so identical weight functions always produce identical
/// bytes (a `HashMap` iteration order must never leak into the image).
pub fn put_weights(
    out: &mut Vec<u8>,
    variables: &[InstantiatedVariable],
    fallback_units: &[(EdgeId, Histogram1D)],
) {
    put_len(out, variables.len());
    for v in variables {
        put_variable(out, v);
    }
    put_len(out, fallback_units.len());
    for (edge, h) in fallback_units {
        put_u32(out, edge.0);
        put_histogram1d(out, h);
    }
}

/// The decoded counterpart of [`put_weights`].
pub type WeightsParts = (Vec<InstantiatedVariable>, Vec<(EdgeId, Histogram1D)>);

pub fn read_weights(c: &mut Cursor<'_>) -> Result<WeightsParts, PersistError> {
    let n = c.read_len()?;
    let mut variables = Vec::with_capacity(n);
    for _ in 0..n {
        variables.push(read_variable(c)?);
    }
    let n = c.read_len()?;
    let mut fallback_units = Vec::with_capacity(n);
    for _ in 0..n {
        let edge = EdgeId(c.u32()?);
        let h = read_histogram1d(c)?;
        fallback_units.push((edge, h));
    }
    Ok((variables, fallback_units))
}

// ---------------------------------------------------------------------------
// Configuration fingerprint
// ---------------------------------------------------------------------------

/// Encodes every configuration field that affects what the persisted state
/// *means*. Recovery compares these bytes against the booting process's
/// encoding: any difference (a re-tuned β, a different α partition, a changed
/// retention window…) makes the snapshot lineage unusable and forces a clean
/// cold boot instead of silently mixing epochs derived under different rules.
pub fn encode_config(cfg: &HybridConfig, retention_max_age: Option<f64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    put_u32(&mut out, cfg.alpha_minutes);
    put_u64(&mut out, cfg.beta as u64);
    put_u64(&mut out, cfg.max_rank as u64);
    put_u8(&mut out, cost_kind_tag(cfg.cost_kind));
    put_f64(&mut out, cfg.speed_limit_spread);
    put_u64(&mut out, cfg.auto.folds as u64);
    put_u64(&mut out, cfg.auto.max_buckets as u64);
    put_f64(&mut out, cfg.auto.min_relative_improvement);
    put_f64(&mut out, cfg.auto.resolution);
    put_u64(&mut out, cfg.auto.seed);
    put_u64(&mut out, cfg.auto.max_distinct as u64);
    put_u64(&mut out, cfg.auto.max_selection_samples as u64);
    match retention_max_age {
        Some(age) => {
            put_u8(&mut out, 1);
            put_f64(&mut out, age);
        }
        None => put_u8(&mut out, 0),
    }
    // Regime schema entries are appended only when the schema is non-empty,
    // so a pre-regime deployment's fingerprint bytes are unchanged and its
    // v1 snapshot lineage stays adoptable.
    if !cfg.regimes.is_empty() {
        put_regime_schema(&mut out, &cfg.regimes);
    }
    out
}

pub fn cost_kind_tag(kind: CostKind) -> u8 {
    match kind {
        CostKind::TravelTime => 0,
        CostKind::Emissions => 1,
    }
}

pub fn cost_kind_from_tag(tag: u8) -> Result<CostKind, PersistError> {
    match tag {
        0 => Ok(CostKind::TravelTime),
        1 => Ok(CostKind::Emissions),
        _ => Err(PersistError::corrupt(
            "cost kind",
            format!("unknown tag {tag}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trajectory(id: u64) -> MatchedTrajectory {
        MatchedTrajectory {
            id,
            path: Path::from_edges_unchecked(vec![EdgeId(3), EdgeId(9), EdgeId(4)]),
            entry_times: vec![Timestamp(10.5), Timestamp(20.25), Timestamp(31.125)],
            travel_times: vec![9.75, 10.875, 0.1 + 0.2], // deliberately inexact sum
            avg_speeds_mps: vec![13.0, 12.5, 11.75],
            regime: RegimeId::ALL_TRAFFIC,
        }
    }

    #[test]
    fn regime_sections_round_trip() {
        let batch = vec![
            sample_trajectory(1).with_regime(RegimeId(2)),
            sample_trajectory(2),
        ];
        let mut buf = Vec::new();
        put_regime_tags(&mut buf, &batch);
        let mut c = Cursor::new(&buf, "tags");
        assert_eq!(
            read_regime_tags(&mut c).unwrap(),
            vec![RegimeId(2), RegimeId::ALL_TRAFFIC]
        );
        c.finish().unwrap();

        let schema = RegimeSchema::flat().with_group(RegimeId(2), RegimeId(5));
        let mut buf = Vec::new();
        put_regime_schema(&mut buf, &schema);
        let mut c = Cursor::new(&buf, "schema");
        assert_eq!(read_regime_schema(&mut c).unwrap(), schema);
        c.finish().unwrap();
    }

    #[test]
    fn config_fingerprint_is_v1_compatible_for_empty_schemas() {
        let base = HybridConfig::default();
        let reference = encode_config(&base, None);
        let grouped = base
            .clone()
            .with_regimes(RegimeSchema::flat().with_group(RegimeId(1), RegimeId(3)));
        assert_ne!(reference, encode_config(&grouped, None));
        // An explicitly flat schema encodes exactly like the default.
        let flat = base.with_regimes(RegimeSchema::flat());
        assert_eq!(reference, encode_config(&flat, None));
    }

    #[test]
    fn trajectory_round_trip_is_bit_identical() {
        let m = sample_trajectory(42);
        let mut buf = Vec::new();
        put_trajectory(&mut buf, &m);
        let mut c = Cursor::new(&buf, "trajectory");
        let back = read_trajectory(&mut c).unwrap();
        c.finish().unwrap();
        assert_eq!(back, m);
        assert_eq!(back.travel_times[2].to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn histogram_nd_round_trip_preserves_unnormalised_mass() {
        let axes = vec![
            vec![
                Bucket::new(0.0, 10.0).unwrap(),
                Bucket::new(10.0, 20.0).unwrap(),
            ],
            vec![Bucket::new(0.0, 5.0).unwrap()],
        ];
        let cells = vec![(vec![0u32, 0u32], 0.1f64), (vec![1, 0], 0.2)];
        let h = HistogramNd::from_raw_parts(axes, cells).unwrap();
        let mut buf = Vec::new();
        put_histogram_nd(&mut buf, &h);
        let mut c = Cursor::new(&buf, "histogram");
        let back = read_histogram_nd(&mut c).unwrap();
        c.finish().unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn config_fingerprint_discriminates_every_field() {
        let base = HybridConfig::default();
        let reference = encode_config(&base, Some(3600.0));
        assert_eq!(reference, encode_config(&base, Some(3600.0)));
        assert_ne!(reference, encode_config(&base, Some(7200.0)));
        assert_ne!(reference, encode_config(&base, None));
        let mut beta = base.clone();
        beta.beta += 1;
        assert_ne!(reference, encode_config(&beta, Some(3600.0)));
        let mut alpha = base.clone();
        alpha.alpha_minutes *= 2;
        assert_ne!(reference, encode_config(&alpha, Some(3600.0)));
        let mut seed = base;
        seed.auto.seed ^= 1;
        assert_ne!(reference, encode_config(&seed, Some(3600.0)));
    }

    #[test]
    fn corrupt_tags_and_lengths_error_cleanly() {
        let mut buf = Vec::new();
        put_trajectories(&mut buf, &[sample_trajectory(1)]);
        // Flip every byte in turn: decode must never panic.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            let mut c = Cursor::new(&bad, "trajectories");
            let _ = read_trajectories(&mut c).and_then(|_| c.finish());
        }
        assert!(cost_kind_from_tag(7).is_err());
    }
}
