//! The append-only ingest journal.
//!
//! # File layout (version 1)
//!
//! ```text
//! magic  8 bytes   b"PCJRNL\0\x01"
//! then zero or more records:
//!   length  u32    payload bytes
//!   CRC32   u32    over length ‖ payload
//!   payload        epoch u64, op u8, op body
//! ```
//!
//! Op bodies: `0` = ingest (a trajectory batch), `1` = retire-before (a
//! timestamp cutoff), `2` = retire-ids (an id list), `3` = regime-tagged
//! ingest (a trajectory batch followed by one regime tag per trajectory).
//! An all-global batch always encodes as op `0`, so journals written by an
//! untagged deployment are byte-identical to version-1 journals. Every
//! record carries the epoch the operation *published*, so replay can skip
//! records already captured by a snapshot.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a partial record at the end of the file. On
//! open, the journal is scanned record by record; the scan stops at the first
//! frame that is short, oversized, or fails its CRC, and the file is
//! truncated back to the last valid boundary — the exact definition of
//! "resume from the last durable record". A file whose 8-byte magic is wrong
//! (or that is shorter than the magic) was never a journal this process can
//! extend; it is re-created empty, and the report says so.

use crate::codec;
use crate::crc::crc32_parts;
use crate::error::PersistError;
use crate::format::{put_f64, put_len, put_u64, put_u8, Cursor, MAX_LEN};
use pathcost_traj::{MatchedTrajectory, Timestamp};
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Magic prefix of every journal file; the final byte is the format version.
pub const JOURNAL_MAGIC: [u8; 8] = *b"PCJRNL\x00\x01";

/// One durable ingest operation.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalOp {
    /// A trajectory batch handed to `LiveIngestor::ingest`.
    Ingest(Vec<MatchedTrajectory>),
    /// A TTL retirement: retire every trajectory starting before the cutoff.
    RetireBefore(Timestamp),
    /// An explicit retirement by trajectory id.
    RetireIds(Vec<u64>),
}

/// A journal record: the operation plus the epoch it published.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// The ingest epoch this operation produced.
    pub epoch: u64,
    /// The operation itself.
    pub op: JournalOp,
}

impl JournalRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.epoch);
        match &self.op {
            JournalOp::Ingest(batch) => {
                if batch.iter().any(|m| !m.regime.is_global()) {
                    put_u8(&mut out, 3);
                    codec::put_trajectories(&mut out, batch);
                    codec::put_regime_tags(&mut out, batch);
                } else {
                    put_u8(&mut out, 0);
                    codec::put_trajectories(&mut out, batch);
                }
            }
            JournalOp::RetireBefore(cutoff) => {
                put_u8(&mut out, 1);
                put_f64(&mut out, cutoff.0);
            }
            JournalOp::RetireIds(ids) => {
                put_u8(&mut out, 2);
                put_len(&mut out, ids.len());
                for &id in ids {
                    put_u64(&mut out, id);
                }
            }
        }
        out
    }

    fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut c = Cursor::new(payload, "journal record");
        let epoch = c.u64()?;
        let op = match c.u8()? {
            0 => JournalOp::Ingest(codec::read_trajectories(&mut c)?),
            1 => JournalOp::RetireBefore(Timestamp(c.f64()?)),
            2 => {
                let n = c.read_len()?;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(c.u64()?);
                }
                JournalOp::RetireIds(ids)
            }
            3 => {
                let mut batch = codec::read_trajectories(&mut c)?;
                let tags = codec::read_regime_tags(&mut c)?;
                if tags.len() != batch.len() {
                    return Err(PersistError::corrupt(
                        "journal record",
                        format!(
                            "{} regime tags for {} trajectories",
                            tags.len(),
                            batch.len()
                        ),
                    ));
                }
                for (m, tag) in batch.iter_mut().zip(tags) {
                    m.regime = tag;
                }
                JournalOp::Ingest(batch)
            }
            tag => {
                return Err(PersistError::corrupt(
                    "journal record",
                    format!("unknown op tag {tag}"),
                ))
            }
        };
        c.finish()?;
        Ok(JournalRecord { epoch, op })
    }
}

/// What [`Journal::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalReport {
    /// Bytes cut off the end of the file (a torn tail or mid-file
    /// corruption — everything from the first bad frame on).
    pub truncated_bytes: u64,
    /// The file existed but was not a journal (bad magic); it was re-created
    /// empty and its previous content discarded.
    pub recreated: bool,
}

/// An open, append-position-valid journal file.
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Bytes of valid journal content (including the magic header).
    bytes: u64,
    /// Valid records currently in the file.
    records: u64,
}

impl Journal {
    /// Opens (or creates) the journal at `path`, scans it, truncates any
    /// invalid tail, and returns the open journal, the decoded records, and
    /// a report of what repair was needed.
    pub fn open(
        path: impl Into<PathBuf>,
    ) -> Result<(Self, Vec<JournalRecord>, JournalReport), PersistError> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut report = JournalReport::default();
        let existing = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };

        let (records, valid_len) = if existing.len() < JOURNAL_MAGIC.len()
            || existing[..JOURNAL_MAGIC.len()] != JOURNAL_MAGIC
        {
            if !existing.is_empty() {
                report.recreated = true;
            }
            (Vec::new(), 0)
        } else {
            let (records, valid) = scan(&existing);
            report.truncated_bytes = (existing.len() - valid) as u64;
            (records, valid)
        };

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if valid_len == 0 {
            // Fresh or re-created: write a clean header.
            file.set_len(0)?;
            file.write_all(&JOURNAL_MAGIC)?;
            file.sync_all()?;
        } else if valid_len < existing.len() {
            // Torn tail: cut back to the last valid record boundary, and make
            // the repair durable before anything is appended after it.
            file.set_len(valid_len as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let bytes = file.stream_position()?;
        let journal = Journal {
            file,
            path,
            bytes,
            records: records.len() as u64,
        };
        Ok((journal, records, report))
    }

    /// Appends one record. When `sync` is set the record is fdatasynced
    /// before returning — the default for every published epoch, so a
    /// crash immediately after an acknowledged publish cannot lose it.
    pub fn append(&mut self, record: &JournalRecord, sync: bool) -> Result<(), PersistError> {
        if let Some(fault) = crate::faults::take_injected_failure() {
            return Err(fault);
        }
        let payload = record.encode();
        let mut frame = Vec::with_capacity(8 + payload.len());
        let len_bytes = (payload.len() as u32).to_le_bytes();
        frame.extend_from_slice(&len_bytes);
        frame.extend_from_slice(&crc32_parts(&[&len_bytes, &payload]).to_le_bytes());
        frame.extend_from_slice(&payload);
        self.file.write_all(&frame)?;
        if sync {
            self.file.sync_data()?;
        }
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Flushes buffered appends to stable storage (`fdatasync`). Used by
    /// group-fsync mode, which appends several closely-spaced epochs with
    /// `sync: false` and closes the durability window with one sync here.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        if let Some(fault) = crate::faults::take_injected_failure() {
            return Err(fault);
        }
        self.file.sync_data()?;
        Ok(())
    }

    /// Current journal size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of valid records currently in the file.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Rewrites the journal keeping only records with `epoch >
    /// keep_after_epoch` — the rotation step after a successful snapshot.
    ///
    /// The caller passes the epoch of the *oldest retained snapshot
    /// generation*, not the newest: the journal must stay able to replay on
    /// top of every generation still on disk, otherwise a corrupt newest
    /// snapshot would leave an unbridgeable gap back to the previous one.
    ///
    /// The rewrite is atomic (temp file + fsync + rename + directory fsync),
    /// so a crash mid-rotation leaves the previous journal intact.
    pub fn rotate(&mut self, keep_after_epoch: u64) -> Result<(), PersistError> {
        if let Some(fault) = crate::faults::take_injected_failure() {
            return Err(fault);
        }
        let existing = fs::read(&self.path)?;
        let (records, _) = if existing.len() >= JOURNAL_MAGIC.len()
            && existing[..JOURNAL_MAGIC.len()] == JOURNAL_MAGIC
        {
            scan(&existing)
        } else {
            (Vec::new(), 0)
        };
        let tmp = self.path.with_extension("pcj.tmp");
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            let mut image = Vec::with_capacity(existing.len());
            image.extend_from_slice(&JOURNAL_MAGIC);
            let mut kept = 0u64;
            for record in &records {
                if record.epoch <= keep_after_epoch {
                    continue;
                }
                let payload = record.encode();
                let len_bytes = (payload.len() as u32).to_le_bytes();
                image.extend_from_slice(&len_bytes);
                image.extend_from_slice(&crc32_parts(&[&len_bytes, &payload]).to_le_bytes());
                image.extend_from_slice(&payload);
                kept += 1;
            }
            f.write_all(&image)?;
            f.sync_all()?;
            self.bytes = image.len() as u64;
            self.records = kept;
        }
        fs::rename(&tmp, &self.path)?;
        if let Some(parent) = self.path.parent() {
            if let Ok(d) = File::open(parent) {
                let _ = d.sync_all();
            }
        }
        // Swap the handle to the rewritten file and seek to its end.
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.file = file;
        Ok(())
    }
}

/// Scans journal bytes (magic already verified), returning the decoded
/// records and the byte length of the valid prefix. Stops at the first
/// short, oversized, CRC-failing or undecodable frame.
fn scan(bytes: &[u8]) -> (Vec<JournalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = JOURNAL_MAGIC.len();
    while bytes.len() - pos >= 8 {
        let len_bytes: [u8; 4] = bytes[pos..pos + 4].try_into().expect("4 bytes");
        let len = u32::from_le_bytes(len_bytes) as usize;
        let declared_crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > MAX_LEN as usize || bytes.len() - pos - 8 < len {
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if crc32_parts(&[&len_bytes, payload]) != declared_crc {
            break;
        }
        match JournalRecord::decode(payload) {
            Ok(record) => records.push(record),
            Err(_) => break,
        }
        pos += 8 + len;
    }
    (records, pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathcost_roadnet::{EdgeId, Path as RoadPath};

    fn temp_journal(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("pathcost-journal-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("journal.pcj")
    }

    fn sample_records() -> Vec<JournalRecord> {
        let m = MatchedTrajectory {
            id: 11,
            path: RoadPath::from_edges_unchecked(vec![EdgeId(1), EdgeId(2)]),
            entry_times: vec![Timestamp(5.0), Timestamp(9.5)],
            travel_times: vec![4.5, 6.25],
            avg_speeds_mps: vec![10.0, 11.0],
            regime: pathcost_traj::RegimeId::ALL_TRAFFIC,
        };
        vec![
            JournalRecord {
                epoch: 1,
                op: JournalOp::Ingest(vec![m]),
            },
            JournalRecord {
                epoch: 2,
                op: JournalOp::RetireBefore(Timestamp(42.5)),
            },
            JournalRecord {
                epoch: 3,
                op: JournalOp::RetireIds(vec![7, 11, 13]),
            },
        ]
    }

    #[test]
    fn tagged_ingest_round_trips_and_untagged_stays_v1() {
        use pathcost_traj::RegimeId;
        let records = sample_records();
        let untagged = match &records[0].op {
            JournalOp::Ingest(batch) => batch.clone(),
            _ => unreachable!(),
        };
        // All-global batches encode as op 0 — the exact v1 bytes.
        let v1 = records[0].encode();
        assert_eq!(v1[8], 0, "all-global ingest must keep the v1 op tag");

        let tagged: Vec<_> = untagged
            .into_iter()
            .map(|m| m.with_regime(RegimeId(4)))
            .collect();
        let record = JournalRecord {
            epoch: 9,
            op: JournalOp::Ingest(tagged.clone()),
        };
        let payload = record.encode();
        assert_eq!(payload[8], 3, "tagged ingest must use the tagged op");
        let back = JournalRecord::decode(&payload).unwrap();
        match back.op {
            JournalOp::Ingest(batch) => {
                assert_eq!(batch, tagged);
                assert!(batch.iter().all(|m| m.regime == RegimeId(4)));
            }
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn append_reopen_round_trip() {
        let path = temp_journal("roundtrip");
        let (mut j, records, report) = Journal::open(&path).unwrap();
        assert!(records.is_empty());
        assert_eq!(report, JournalReport::default());
        for r in sample_records() {
            j.append(&r, true).unwrap();
        }
        assert_eq!(j.records(), 3);
        drop(j);
        let (j, records, report) = Journal::open(&path).unwrap();
        assert_eq!(records, sample_records());
        assert_eq!(report, JournalReport::default());
        assert_eq!(j.records(), 3);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_at_every_cut_point() {
        let path = temp_journal("torn");
        let (mut j, _, _) = Journal::open(&path).unwrap();
        for r in sample_records() {
            j.append(&r, false).unwrap();
        }
        drop(j);
        let full = fs::read(&path).unwrap();
        for cut in JOURNAL_MAGIC.len()..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let (j, records, report) = Journal::open(&path).unwrap();
            // The valid prefix survives; the torn record is gone.
            let expected: Vec<JournalRecord> =
                sample_records().into_iter().take(records.len()).collect();
            assert_eq!(records, expected, "cut at {cut}");
            assert!(records.len() < 3 || cut == full.len());
            assert_eq!(
                report.truncated_bytes > 0,
                fs::metadata(&path).unwrap().len() < cut as u64,
                "cut at {cut}"
            );
            // The truncated journal accepts new appends cleanly.
            drop(j);
            let (mut j, _, _) = Journal::open(&path).unwrap();
            j.append(
                &JournalRecord {
                    epoch: 99,
                    op: JournalOp::RetireIds(vec![1]),
                },
                false,
            )
            .unwrap();
            drop(j);
            let (_, records, _) = Journal::open(&path).unwrap();
            assert_eq!(records.last().unwrap().epoch, 99);
        }
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn mid_file_bit_flip_truncates_from_the_flip() {
        let path = temp_journal("flip");
        let (mut j, _, _) = Journal::open(&path).unwrap();
        for r in sample_records() {
            j.append(&r, false).unwrap();
        }
        drop(j);
        let full = fs::read(&path).unwrap();
        for byte in JOURNAL_MAGIC.len()..full.len() {
            let mut bad = full.clone();
            bad[byte] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            let (_, records, _) = Journal::open(&path).unwrap();
            assert!(
                records.len() < 3,
                "flip at byte {byte} left all records intact"
            );
            // Whatever survived is a clean prefix of the original.
            assert_eq!(
                records,
                sample_records()[..records.len()].to_vec(),
                "flip at byte {byte}"
            );
        }
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn non_journal_file_is_recreated_empty() {
        let path = temp_journal("recreate");
        fs::write(&path, b"this was never a journal").unwrap();
        let (j, records, report) = Journal::open(&path).unwrap();
        assert!(records.is_empty());
        assert!(report.recreated);
        assert_eq!(j.records(), 0);
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn rotation_keeps_only_post_cutoff_records() {
        let path = temp_journal("rotate");
        let (mut j, _, _) = Journal::open(&path).unwrap();
        for r in sample_records() {
            j.append(&r, false).unwrap();
        }
        j.rotate(1).unwrap();
        assert_eq!(j.records(), 2);
        // The rotated journal still appends and reopens cleanly.
        j.append(
            &JournalRecord {
                epoch: 4,
                op: JournalOp::RetireIds(vec![5]),
            },
            true,
        )
        .unwrap();
        drop(j);
        let (_, records, report) = Journal::open(&path).unwrap();
        assert_eq!(report, JournalReport::default());
        assert_eq!(
            records.iter().map(|r| r.epoch).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
        fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
