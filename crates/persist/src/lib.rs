//! Crash-safe persistence for the path-cost engine: versioned snapshots and
//! an append-only ingest journal.
//!
//! # Model
//!
//! Durable state is a *snapshot* (full dump of the [`TrajectoryStore`] and
//! the instantiated [`PathWeightFunction`] at some ingest epoch `E`) plus a
//! *journal* of every ingest/retire operation with the epoch it published.
//! Recovery loads the newest valid snapshot and replays only the journal
//! records with epoch `> E`; because every `f64` travels as its IEEE-754 bit
//! pattern and every index is re-derived deterministically, the recovered
//! process is bit-identical to one that never crashed.
//!
//! # Durability and corruption
//!
//! * Snapshots are published atomically: temp file → fsync → rename →
//!   directory fsync. The last [`snapshot::KEEP_GENERATIONS`] generations are
//!   retained, so a corrupt newest snapshot falls back to the previous one.
//! * Every snapshot section and journal record carries a CRC-32; corruption
//!   is detected and *skipped*, never panicked on. A torn journal tail is
//!   truncated back to the last valid record on open.
//! * After each successful snapshot the journal is rotated down to the
//!   records still needed by the **oldest** retained generation.
//!
//! The layers, bottom-up: [`crc`] and [`mod@format`] (checksums and primitive
//! encoding), [`codec`] (domain-type encoding), [`snapshot`] and [`journal`]
//! (the two on-disk structures), [`status`] (shared telemetry for health
//! endpoints), [`faults`] (process-global IO fault injection so chaos tests
//! can fail appends and publishes inside a live server). The live-ingest
//! crate wires these into its `LiveIngestor`; its IO-fault ladder (bounded
//! retry, then serving-only degraded mode) is documented in `ROBUSTNESS.md`
//! at the repository root.
//!
//! [`TrajectoryStore`]: pathcost_traj::TrajectoryStore
//! [`PathWeightFunction`]: pathcost_core::PathWeightFunction

pub mod codec;
pub mod crc;
pub mod error;
pub mod faults;
pub mod format;
pub mod journal;
pub mod snapshot;
pub mod status;

pub use error::PersistError;
pub use faults::{armed_io_errors, clear_io_errors, inject_io_errors};
pub use journal::{Journal, JournalOp, JournalRecord, JournalReport};
pub use snapshot::{Snapshot, SnapshotReader, SnapshotWriter, KEEP_GENERATIONS};
pub use status::{PersistenceStatus, RecoveryOutcome};
