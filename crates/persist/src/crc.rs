//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`).
//!
//! Hand-rolled because the build is fully offline (no registry crates); the
//! classic byte-at-a-time table driver is plenty for snapshot/journal sizes.
//! The parameters match zlib's `crc32()`, so images can be cross-checked
//! with standard tooling.

/// The 256-entry lookup table, generated at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    crc32_parts(&[bytes])
}

/// CRC-32 over the concatenation of `parts`, without materialising it —
/// used to checksum a framing header together with its payload.
pub fn crc32_parts(parts: &[&[u8]]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for part in parts {
        for &b in *part {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // The canonical check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn parts_match_concatenation() {
        assert_eq!(crc32_parts(&[b"1234", b"56789"]), crc32(b"123456789"));
        assert_eq!(crc32_parts(&[b"", b"abc", b""]), crc32(b"abc"));
        assert_eq!(crc32_parts(&[]), crc32(b""));
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"hello, persistent world".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), reference, "flip at {byte}:{bit}");
            }
        }
    }
}
