//! Shared, lock-free persistence telemetry.
//!
//! A single [`PersistenceStatus`] is created by the persistence layer and
//! cloned (via `Arc`) into whoever needs to observe it — typically the HTTP
//! server's `/healthz` handler — or poke it — the `/admin/snapshot` endpoint
//! sets a request flag that the ingest-owning thread polls. Everything is
//! plain atomics so readers never contend with the ingest path.

use pathcost_obs::{exponential_buckets, Histogram, HistogramSnapshot};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::time::Duration;

/// How the last process start obtained its state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryOutcome {
    /// No persistence configured, or status not yet recorded.
    Unknown,
    /// No usable on-disk state: built from scratch (bootstrap).
    Cold,
    /// Restored from a snapshot (plus zero or more replayed journal records).
    Warm,
    /// On-disk state existed but was unusable (config mismatch, corrupt
    /// beyond repair, rotated-away journal); rebuilt from scratch.
    Discarded,
}

impl RecoveryOutcome {
    /// Stable string for health endpoints and logs.
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryOutcome::Unknown => "unknown",
            RecoveryOutcome::Cold => "cold",
            RecoveryOutcome::Warm => "warm",
            RecoveryOutcome::Discarded => "discarded",
        }
    }

    fn from_u8(v: u8) -> Self {
        match v {
            1 => RecoveryOutcome::Cold,
            2 => RecoveryOutcome::Warm,
            3 => RecoveryOutcome::Discarded,
            _ => RecoveryOutcome::Unknown,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            RecoveryOutcome::Unknown => 0,
            RecoveryOutcome::Cold => 1,
            RecoveryOutcome::Warm => 2,
            RecoveryOutcome::Discarded => 3,
        }
    }
}

/// Live persistence counters, shared between the ingest path and observers.
///
/// All stores use relaxed ordering: every field is an independent gauge or
/// counter read for monitoring, and no reader derives invariants across
/// fields.
#[derive(Debug)]
pub struct PersistenceStatus {
    recovery_outcome: AtomicU8,
    /// Epoch of the snapshot the process recovered from (0 = none).
    recovered_snapshot_epoch: AtomicU64,
    /// Journal records replayed on top of the recovered snapshot.
    replayed_records: AtomicU64,
    /// Snapshot generations skipped as corrupt during recovery.
    corrupt_generations_skipped: AtomicU64,
    /// Epoch of the most recent published snapshot (0 = none yet).
    snapshot_epoch: AtomicU64,
    /// Wall-clock milliseconds of the most recent published snapshot.
    snapshot_unix_ms: AtomicU64,
    /// Snapshots published by this process.
    snapshots_written: AtomicU64,
    /// Valid records currently in the journal.
    journal_records: AtomicU64,
    /// Current journal size in bytes.
    journal_bytes: AtomicU64,
    /// Set by `/admin/snapshot`, cleared by the ingest thread when honoured.
    snapshot_requested: AtomicBool,
    /// Whether persistence is suspended (IO-fault ladder exhausted): the
    /// process keeps serving but new ingests are not durable until resumed.
    suspended: AtomicBool,
    /// Times persistence entered the suspended state.
    suspensions: AtomicU64,
    /// Transient IO errors retried (successfully or not) by the ingest path.
    io_retries: AtomicU64,
    /// Journal failures that escalated to the snapshot-fallback rung of the
    /// IO-fault ladder (retries exhausted, snapshot attempted instead).
    snapshot_fallbacks: AtomicU64,
    /// Journal fsync latency (seconds, 16 µs … ~4 s exponential buckets).
    fsync_seconds: Histogram,
    /// End-to-end snapshot publish duration (seconds).
    snapshot_seconds: Histogram,
}

impl Default for PersistenceStatus {
    fn default() -> Self {
        Self {
            recovery_outcome: AtomicU8::new(0),
            recovered_snapshot_epoch: AtomicU64::new(0),
            replayed_records: AtomicU64::new(0),
            corrupt_generations_skipped: AtomicU64::new(0),
            snapshot_epoch: AtomicU64::new(0),
            snapshot_unix_ms: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            journal_records: AtomicU64::new(0),
            journal_bytes: AtomicU64::new(0),
            snapshot_requested: AtomicBool::new(false),
            suspended: AtomicBool::new(false),
            suspensions: AtomicU64::new(0),
            io_retries: AtomicU64::new(0),
            snapshot_fallbacks: AtomicU64::new(0),
            fsync_seconds: Histogram::new(&exponential_buckets(16e-6, 4.0, 10)),
            snapshot_seconds: Histogram::new(&exponential_buckets(256e-6, 4.0, 8)),
        }
    }
}

impl PersistenceStatus {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_recovery(
        &self,
        outcome: RecoveryOutcome,
        snapshot_epoch: u64,
        replayed: u64,
        corrupt_skipped: u64,
    ) {
        self.recovery_outcome
            .store(outcome.as_u8(), Ordering::Relaxed);
        self.recovered_snapshot_epoch
            .store(snapshot_epoch, Ordering::Relaxed);
        self.replayed_records.store(replayed, Ordering::Relaxed);
        self.corrupt_generations_skipped
            .store(corrupt_skipped, Ordering::Relaxed);
    }

    pub fn record_snapshot(&self, epoch: u64, unix_ms: u64) {
        self.snapshot_epoch.store(epoch, Ordering::Relaxed);
        self.snapshot_unix_ms.store(unix_ms, Ordering::Relaxed);
        self.snapshots_written.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_journal(&self, records: u64, bytes: u64) {
        self.journal_records.store(records, Ordering::Relaxed);
        self.journal_bytes.store(bytes, Ordering::Relaxed);
    }

    /// Flags that an operator asked for a snapshot; the ingest-owning thread
    /// observes this via [`take_snapshot_request`](Self::take_snapshot_request).
    pub fn request_snapshot(&self) {
        self.snapshot_requested.store(true, Ordering::Relaxed);
    }

    /// Consumes a pending snapshot request, if any.
    pub fn take_snapshot_request(&self) -> bool {
        self.snapshot_requested.swap(false, Ordering::Relaxed)
    }

    /// Marks persistence as suspended (entered serving-only degraded mode).
    /// Counts a suspension only on the false → true transition.
    pub fn set_suspended(&self, suspended: bool) {
        let was = self.suspended.swap(suspended, Ordering::Relaxed);
        if suspended && !was {
            self.suspensions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether persistence is currently suspended. `/healthz` reports 503
    /// with a reason while this is set.
    pub fn suspended(&self) -> bool {
        self.suspended.load(Ordering::Relaxed)
    }

    /// Times persistence entered the suspended state over process lifetime.
    pub fn suspensions(&self) -> u64 {
        self.suspensions.load(Ordering::Relaxed)
    }

    /// Counts one transient IO error that the ingest path retried.
    pub fn record_io_retry(&self) {
        self.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Transient IO errors retried by the ingest path.
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Counts one snapshot attempt that fell back down the IO-fault ladder.
    pub fn record_snapshot_fallback(&self) {
        self.snapshot_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot attempts that could not be published and fell back.
    pub fn snapshot_fallbacks(&self) -> u64 {
        self.snapshot_fallbacks.load(Ordering::Relaxed)
    }

    /// Records the duration of one journal fsync (or fsync-equivalent flush).
    pub fn record_fsync(&self, took: Duration) {
        self.fsync_seconds.observe_duration(took);
    }

    /// Distribution of journal fsync latencies, for `/metrics`.
    pub fn fsync_latency(&self) -> HistogramSnapshot {
        self.fsync_seconds.snapshot()
    }

    /// Records the end-to-end duration of one snapshot publish.
    pub fn record_snapshot_duration(&self, took: Duration) {
        self.snapshot_seconds.observe_duration(took);
    }

    /// Distribution of snapshot publish durations, for `/metrics`.
    pub fn snapshot_duration(&self) -> HistogramSnapshot {
        self.snapshot_seconds.snapshot()
    }

    pub fn recovery_outcome(&self) -> RecoveryOutcome {
        RecoveryOutcome::from_u8(self.recovery_outcome.load(Ordering::Relaxed))
    }

    pub fn recovered_snapshot_epoch(&self) -> u64 {
        self.recovered_snapshot_epoch.load(Ordering::Relaxed)
    }

    pub fn replayed_records(&self) -> u64 {
        self.replayed_records.load(Ordering::Relaxed)
    }

    pub fn corrupt_generations_skipped(&self) -> u64 {
        self.corrupt_generations_skipped.load(Ordering::Relaxed)
    }

    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch.load(Ordering::Relaxed)
    }

    pub fn snapshot_unix_ms(&self) -> u64 {
        self.snapshot_unix_ms.load(Ordering::Relaxed)
    }

    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written.load(Ordering::Relaxed)
    }

    pub fn journal_records(&self) -> u64 {
        self.journal_records.load(Ordering::Relaxed)
    }

    pub fn journal_bytes(&self) -> u64 {
        self.journal_bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_request_is_consumed_once() {
        let s = PersistenceStatus::new();
        assert!(!s.take_snapshot_request());
        s.request_snapshot();
        assert!(s.take_snapshot_request());
        assert!(!s.take_snapshot_request());
    }

    #[test]
    fn recovery_outcome_round_trips() {
        let s = PersistenceStatus::new();
        assert_eq!(s.recovery_outcome(), RecoveryOutcome::Unknown);
        for outcome in [
            RecoveryOutcome::Cold,
            RecoveryOutcome::Warm,
            RecoveryOutcome::Discarded,
        ] {
            s.record_recovery(outcome, 7, 3, 1);
            assert_eq!(s.recovery_outcome(), outcome);
            assert_eq!(s.recovered_snapshot_epoch(), 7);
            assert_eq!(s.replayed_records(), 3);
            assert_eq!(s.corrupt_generations_skipped(), 1);
        }
        assert_eq!(RecoveryOutcome::Warm.as_str(), "warm");
    }

    #[test]
    fn suspension_counts_only_transitions() {
        let s = PersistenceStatus::new();
        assert!(!s.suspended());
        s.set_suspended(true);
        s.set_suspended(true); // already suspended: no second count
        assert!(s.suspended());
        assert_eq!(s.suspensions(), 1);
        s.set_suspended(false);
        assert!(!s.suspended());
        s.set_suspended(true);
        assert_eq!(s.suspensions(), 2);
        s.record_io_retry();
        s.record_io_retry();
        assert_eq!(s.io_retries(), 2);
    }

    #[test]
    fn counters_accumulate() {
        let s = PersistenceStatus::new();
        s.record_snapshot(4, 1_000);
        s.record_snapshot(9, 2_000);
        assert_eq!(s.snapshots_written(), 2);
        assert_eq!(s.snapshot_epoch(), 9);
        assert_eq!(s.snapshot_unix_ms(), 2_000);
        s.record_journal(12, 3_456);
        assert_eq!(s.journal_records(), 12);
        assert_eq!(s.journal_bytes(), 3_456);
    }

    #[test]
    fn durability_latency_histograms_accumulate() {
        let s = PersistenceStatus::new();
        s.record_fsync(Duration::from_micros(120));
        s.record_fsync(Duration::from_millis(3));
        s.record_snapshot_duration(Duration::from_millis(8));
        s.record_snapshot_fallback();
        assert_eq!(s.fsync_latency().count(), 2);
        assert_eq!(s.snapshot_duration().count(), 1);
        assert_eq!(s.snapshot_fallbacks(), 1);
        assert!(s.fsync_latency().sum > 0.003);
    }
}
