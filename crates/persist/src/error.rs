//! Error type of the persistence layer.
//!
//! The cardinal rule of this crate is that *bad bytes are never a panic*:
//! every decode path returns [`PersistError::Corrupt`] with enough context to
//! log, and recovery treats corruption as "fall back to the previous
//! generation / truncate the journal tail", never as a crash.

use pathcost_core::CoreError;
use pathcost_hist::HistError;
use std::fmt;

/// Anything that can go wrong while persisting or recovering state.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure (open, read, write, fsync, rename).
    Io(std::io::Error),
    /// The bytes on disk are not a valid snapshot/journal image: bad magic,
    /// unknown version, a CRC mismatch, a truncated section, an
    /// out-of-bounds length. `context` names the structure being decoded.
    Corrupt {
        /// Which structure failed to decode (e.g. `"snapshot header"`).
        context: &'static str,
        /// Human-readable detail for the recovery log line.
        detail: String,
    },
    /// The persisted state is internally valid but cannot be used: it was
    /// written under a different configuration than the process booted with.
    Incompatible(&'static str),
    /// Reconstructing domain objects from decoded parts failed.
    Core(CoreError),
    /// Reconstructing a histogram from decoded parts failed.
    Hist(HistError),
}

impl PersistError {
    /// Shorthand for a [`Self::Corrupt`] error.
    pub fn corrupt(context: &'static str, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            context,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "persistence I/O error: {e}"),
            PersistError::Corrupt { context, detail } => {
                write!(f, "corrupt {context}: {detail}")
            }
            PersistError::Incompatible(what) => {
                write!(f, "persisted state incompatible: {what}")
            }
            PersistError::Core(e) => write!(f, "persisted state rejected: {e}"),
            PersistError::Hist(e) => write!(f, "persisted histogram rejected: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Core(e) => Some(e),
            PersistError::Hist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CoreError> for PersistError {
    fn from(e: CoreError) -> Self {
        PersistError::Core(e)
    }
}

impl From<HistError> for PersistError {
    fn from(e: HistError) -> Self {
        PersistError::Hist(e)
    }
}
