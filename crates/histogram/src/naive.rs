//! Retained naive reference implementations of the histogram hot paths.
//!
//! These are the pre-optimisation algorithms, kept verbatim so the fast
//! kernels have an executable specification: linear-scan CDF evaluation, the
//! allocate-sort-coarsen convolution pipeline (`O(B_a·B_b)` product entries →
//! overlap rearrangement → greedy `O(n²)` coarsening), and the quadratic
//! overlap rearrangement itself. Property tests assert the optimised paths
//! stay equivalent (bit-for-bit where the arithmetic allows, within `1e-12`
//! total variation otherwise), and the `micro_histograms` bench runs both so
//! speedups are measured against the real old code rather than a guess.
//!
//! Nothing here should be called from production code paths.

use crate::bucket::Bucket;
use crate::error::HistError;
use crate::histogram1d::Histogram1D;

/// `P(cost ≤ x)` by linear scan (the pre-optimisation `prob_leq`).
pub fn prob_leq(hist: &Histogram1D, x: f64) -> f64 {
    let mut acc = 0.0;
    for (b, p) in hist.buckets().iter().zip(hist.probs()) {
        if x >= b.hi {
            acc += p;
        } else if x > b.lo {
            acc += p * (x - b.lo) / b.width();
            break;
        } else {
            break;
        }
    }
    acc.min(1.0)
}

/// Probability density at `x` by linear scan.
pub fn pdf_at(hist: &Histogram1D, x: f64) -> f64 {
    for (b, p) in hist.buckets().iter().zip(hist.probs()) {
        if b.contains(x) {
            return p / b.width();
        }
    }
    0.0
}

/// `P(lo ≤ cost < hi)` by scanning every bucket's overlap fraction.
pub fn prob_within(hist: &Histogram1D, lo: f64, hi: f64) -> f64 {
    if hi <= lo {
        return 0.0;
    }
    let probe = Bucket::new_unchecked(lo, hi);
    hist.buckets()
        .iter()
        .zip(hist.probs())
        .map(|(b, p)| p * b.fraction_within(&probe))
        .sum()
}

/// The `q`-quantile by accumulating probabilities left to right.
pub fn quantile(hist: &Histogram1D, q: f64) -> f64 {
    let q = q.clamp(0.0, 1.0);
    let mut acc = 0.0;
    for (b, p) in hist.buckets().iter().zip(hist.probs()) {
        if acc + p >= q {
            if *p <= 0.0 {
                return b.lo;
            }
            let frac = (q - acc) / p;
            return b.lo + frac * b.width();
        }
        acc += p;
    }
    hist.max()
}

/// The quadratic §4.2 rearrangement: all cut points are collected, and every
/// elementary interval integrates every input bucket's overlap fraction.
pub fn from_overlapping(entries: &[(Bucket, f64)]) -> Result<Histogram1D, HistError> {
    if entries.is_empty() {
        return Err(HistError::EmptyInput);
    }
    for &(_, p) in entries {
        if !p.is_finite() || p < 0.0 {
            return Err(HistError::InvalidProbability(p));
        }
    }
    let mut cuts: Vec<f64> = entries.iter().flat_map(|(b, _)| [b.lo, b.hi]).collect();
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite bounds"));
    cuts.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
    let mut out: Vec<(Bucket, f64)> = Vec::with_capacity(cuts.len());
    for w in cuts.windows(2) {
        let elem = Bucket::new_unchecked(w[0], w[1]);
        let mass: f64 = entries
            .iter()
            .map(|(b, p)| p * b.fraction_within(&elem))
            .sum();
        if mass > 1e-15 {
            out.push((elem, mass));
        }
    }
    Histogram1D::from_entries(out)
}

/// Greedy smallest-adjacent-mass coarsening with a full rescan per merge
/// (the pre-optimisation `Histogram1D::coarsen`).
pub fn coarsen(hist: &Histogram1D, max_buckets: usize) -> Histogram1D {
    let max_buckets = max_buckets.max(1);
    if hist.bucket_count() <= max_buckets {
        return hist.clone();
    }
    let mut buckets: Vec<Bucket> = hist.buckets().to_vec();
    let mut probs: Vec<f64> = hist.probs().to_vec();
    while buckets.len() > max_buckets {
        let mut best = 0;
        let mut best_mass = f64::INFINITY;
        for i in 0..buckets.len() - 1 {
            let mass = probs[i] + probs[i + 1];
            if mass < best_mass {
                best_mass = mass;
                best = i;
            }
        }
        let merged = Bucket::new_unchecked(buckets[best].lo, buckets[best + 1].hi);
        buckets[best] = merged;
        probs[best] += probs[best + 1];
        buckets.remove(best + 1);
        probs.remove(best + 1);
    }
    Histogram1D::from_entries(buckets.into_iter().zip(probs).collect())
        .expect("coarsened entries stay valid")
}

/// The allocate-sort-coarsen pairwise convolution: materialise every bucket
/// product, rearrange, then coarsen.
pub fn convolve_with_limit(
    a: &Histogram1D,
    b: &Histogram1D,
    max_buckets: usize,
) -> Result<Histogram1D, HistError> {
    let mut entries: Vec<(Bucket, f64)> = Vec::with_capacity(a.bucket_count() * b.bucket_count());
    for (ba, pa) in a.buckets().iter().zip(a.probs()) {
        for (bb, pb) in b.buckets().iter().zip(b.probs()) {
            let mass = pa * pb;
            if mass > 0.0 {
                entries.push((ba.sum(bb), mass));
            }
        }
    }
    let hist = from_overlapping(&entries)?;
    Ok(coarsen(&hist, max_buckets))
}

/// Left-to-right fold of [`convolve_with_limit`], cloning the first operand —
/// the pre-optimisation `convolve_many_with_limit`.
pub fn convolve_many_with_limit(
    histograms: &[Histogram1D],
    max_buckets: usize,
) -> Result<Histogram1D, HistError> {
    let mut iter = histograms.iter();
    let first = iter.next().ok_or(HistError::EmptyInput)?;
    let mut acc = first.clone();
    for h in iter {
        acc = convolve_with_limit(&acc, h, max_buckets)?;
    }
    Ok(acc)
}
