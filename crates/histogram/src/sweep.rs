//! Sweep-line rearrangement and heap-based coarsening kernels.
//!
//! Both the §4.2 overlap rearrangement and the convolution of two histograms
//! reduce to the same problem: a set of weighted intervals ("boxcars", each
//! with uniform density) must be flattened into disjoint buckets whose
//! boundaries are the union of the input boundaries. The naive formulation
//! (see [`crate::naive`]) integrates every input bucket over every elementary
//! interval — `O(entries × cuts)`, which is quartic in the bucket count for a
//! convolution. The sweep here turns every interval into two density events,
//! sorts them once, and accumulates a running density in a single pass:
//! `O(n log n)` with no intermediate allocation beyond the reusable event
//! buffer.
//!
//! Coarsening (greedy merging of the adjacent bucket pair with the smallest
//! combined probability) is likewise reimplemented from the naive
//! rescan-per-merge `O(n²)` loop into a lazy-deletion min-heap over pairs,
//! `O(n log n)`, reproducing the exact same merge sequence and leftmost
//! tie-breaking.

use crate::bucket::Bucket;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Cut points closer than this are merged into one boundary, mirroring the
/// dedup tolerance of the naive rearrangement.
pub(crate) const CUT_MERGE_EPS: f64 = 1e-12;

/// Elementary intervals with less mass than this are dropped, mirroring the
/// naive rearrangement's threshold.
pub(crate) const MIN_ELEMENTARY_MASS: f64 = 1e-15;

/// Pushes the two density events of a weighted interval.
#[inline]
pub(crate) fn push_box(events: &mut Vec<(f64, f64)>, lo: f64, hi: f64, mass: f64) {
    if mass > 0.0 {
        let density = mass / (hi - lo);
        events.push((lo, density));
        events.push((hi, -density));
    }
}

/// Sorts the accumulated events and emits disjoint `(bucket, mass)` entries.
///
/// The running density uses Kahan-compensated summation so the long
/// add/subtract chains of large convolutions do not drift; masses are the
/// density times the elementary width, exactly the integral the naive
/// rearrangement computes per interval. `events` is drained (left empty) for
/// reuse.
pub(crate) fn sweep_into(events: &mut Vec<(f64, f64)>, out: &mut Vec<(Bucket, f64)>) {
    out.clear();
    if events.is_empty() {
        return;
    }
    events.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let mut density = 0.0f64;
    let mut compensation = 0.0f64;
    let n = events.len();
    let mut i = 0usize;
    let mut cut = events[0].0;
    while i < n {
        // Absorb every event within the merge tolerance of this cut.
        while i < n && events[i].0 - cut < CUT_MERGE_EPS {
            let y = events[i].1 - compensation;
            let t = density + y;
            compensation = (t - density) - y;
            density = t;
            i += 1;
        }
        if i >= n {
            break;
        }
        let next = events[i].0;
        let mass = density * (next - cut);
        if mass > MIN_ELEMENTARY_MASS {
            out.push((Bucket::new_unchecked(cut, next), mass));
        }
        cut = next;
    }
    events.clear();
}

const NIL: usize = usize::MAX;

/// Reusable buffers for [`coarsen_entries_in_place`].
#[derive(Debug, Default)]
pub struct CoarsenScratch {
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    next: Vec<usize>,
    prev: Vec<usize>,
    /// Current combined mass of the pair whose left bucket is `i`
    /// (`f64::INFINITY` when `i` is dead or has no right neighbour); heap
    /// entries not matching it are stale and skipped.
    pair_mass: Vec<f64>,
    alive: Vec<bool>,
}

/// Greedily merges the adjacent pair with the smallest combined mass until at
/// most `max_buckets` entries remain, in place.
///
/// Pair masses are non-negative finite, so their IEEE-754 bit patterns order
/// exactly like the values and `(mass.to_bits(), left_index)` in a min-heap
/// pops the same leftmost-smallest pair the naive rescan picks.
pub(crate) fn coarsen_entries_in_place(
    entries: &mut Vec<(Bucket, f64)>,
    max_buckets: usize,
    scratch: &mut CoarsenScratch,
) {
    let max_buckets = max_buckets.max(1);
    let n = entries.len();
    if n <= max_buckets {
        return;
    }
    let CoarsenScratch {
        heap,
        next,
        prev,
        pair_mass,
        alive,
    } = scratch;
    heap.clear();
    next.clear();
    next.extend((0..n).map(|i| if i + 1 < n { i + 1 } else { NIL }));
    prev.clear();
    // `0usize.wrapping_sub(1)` is `usize::MAX`, i.e. `NIL`.
    prev.extend((0..n).map(|i| i.wrapping_sub(1)));
    alive.clear();
    alive.resize(n, true);
    pair_mass.clear();
    pair_mass.resize(n, f64::INFINITY);
    for i in 0..n - 1 {
        let mass = entries[i].1 + entries[i + 1].1;
        pair_mass[i] = mass;
        heap.push(Reverse((mass.to_bits(), i)));
    }
    let mut count = n;
    while count > max_buckets {
        let Some(Reverse((bits, i))) = heap.pop() else {
            break;
        };
        if !alive[i] || pair_mass[i].to_bits() != bits {
            continue;
        }
        let j = next[i];
        debug_assert!(j != NIL, "live pairs always have a right neighbour");
        entries[i] = (
            Bucket::new_unchecked(entries[i].0.lo, entries[j].0.hi),
            entries[i].1 + entries[j].1,
        );
        alive[j] = false;
        pair_mass[j] = f64::INFINITY;
        let after = next[j];
        next[i] = after;
        count -= 1;
        if after != NIL {
            prev[after] = i;
            let mass = entries[i].1 + entries[after].1;
            pair_mass[i] = mass;
            heap.push(Reverse((mass.to_bits(), i)));
        } else {
            pair_mass[i] = f64::INFINITY;
        }
        let before = prev[i];
        if before != NIL {
            let mass = entries[before].1 + entries[i].1;
            pair_mass[before] = mass;
            heap.push(Reverse((mass.to_bits(), before)));
        }
    }
    let mut write = 0usize;
    for read in 0..n {
        if alive[read] {
            entries[write] = entries[read];
            write += 1;
        }
    }
    entries.truncate(write);
}

/// Per-thread reusable sweep/coarsen buffers backing the scratch-free APIs.
#[derive(Default)]
struct LocalBuffers {
    events: Vec<(f64, f64)>,
    entries: Vec<(Bucket, f64)>,
    coarsen: CoarsenScratch,
}

thread_local! {
    static LOCAL: RefCell<LocalBuffers> = RefCell::new(LocalBuffers::default());
}

/// Runs `f` with this thread's reusable sweep/coarsen buffers, so the
/// scratch-free public APIs allocate nothing in steady state.
pub(crate) fn with_local_buffers<R>(
    f: impl FnOnce(&mut Vec<(f64, f64)>, &mut Vec<(Bucket, f64)>, &mut CoarsenScratch) -> R,
) -> R {
    LOCAL.with(|cell| {
        let mut guard = cell.borrow_mut();
        let LocalBuffers {
            events,
            entries,
            coarsen,
        } = &mut *guard;
        f(events, entries, coarsen)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_flattens_overlapping_boxes() {
        let mut events = Vec::new();
        push_box(&mut events, 0.0, 10.0, 0.5);
        push_box(&mut events, 5.0, 15.0, 0.5);
        let mut out = Vec::new();
        sweep_into(&mut events, &mut out);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].0.lo, 0.0);
        assert_eq!(out[1].0.lo, 5.0);
        assert_eq!(out[2].0.hi, 15.0);
        let total: f64 = out.iter().map(|&(_, m)| m).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(
            (out[1].1 - 0.5).abs() < 1e-12,
            "overlap doubles the density"
        );
        assert!(events.is_empty(), "events drained for reuse");
    }

    #[test]
    fn sweep_merges_cuts_within_tolerance() {
        let mut events = Vec::new();
        push_box(&mut events, 0.0, 1.0, 0.5);
        push_box(&mut events, 1.0 + 1e-13, 2.0, 0.5);
        let mut out = Vec::new();
        sweep_into(&mut events, &mut out);
        assert_eq!(out.len(), 2, "near-identical cuts collapse");
    }

    #[test]
    fn coarsen_in_place_merges_smallest_adjacent_pair_first() {
        let b = |lo: f64, hi: f64| Bucket::new(lo, hi).unwrap();
        let mut entries = vec![
            (b(0.0, 1.0), 0.1),
            (b(1.0, 2.0), 0.1),
            (b(2.0, 3.0), 0.3),
            (b(3.0, 4.0), 0.3),
            (b(4.0, 5.0), 0.2),
        ];
        let mut scratch = CoarsenScratch::default();
        coarsen_entries_in_place(&mut entries, 3, &mut scratch);
        assert_eq!(entries.len(), 3);
        // First merge is the leftmost smallest pair (0.1 + 0.1 over [0, 2)),
        // then the tie between the 0.5-mass pairs resolves leftmost again.
        assert_eq!(entries[0].0.lo, 0.0);
        assert_eq!(entries[0].0.hi, 3.0);
        assert!((entries[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(entries[1].0.hi, 4.0);
        let total: f64 = entries.iter().map(|&(_, m)| m).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coarsen_in_place_is_a_noop_when_small_enough() {
        let b = |lo: f64, hi: f64| Bucket::new(lo, hi).unwrap();
        let mut entries = vec![(b(0.0, 1.0), 0.4), (b(1.0, 2.0), 0.6)];
        let mut scratch = CoarsenScratch::default();
        coarsen_entries_in_place(&mut entries, 8, &mut scratch);
        assert_eq!(entries.len(), 2);
    }
}
