//! Self-tuning ("Auto") bucket-count selection (§3.1).
//!
//! The paper selects the number of buckets per dimension automatically: start
//! with `b = 1`, compute the cross-validated error `E_b`, increase `b`, and
//! stop as soon as the error no longer drops significantly; `b − 1` is chosen.
//! The error `E_b` is computed with f-fold cross validation: each fold is held
//! out, a V-Optimal histogram with `b` buckets is built from the remaining
//! folds, and the squared error between that histogram and the held-out fold's
//! raw distribution is averaged over the folds.

use crate::error::HistError;
use crate::histogram1d::Histogram1D;
use crate::raw::RawDistribution;
use crate::voptimal::{voptimal_boundaries_all, voptimal_histogram};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration for the Auto bucket-count selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoConfig {
    /// Number of cross-validation folds (`f` in the paper). Default 5.
    pub folds: usize,
    /// Maximum number of buckets considered. Default 10 (the range explored in
    /// the paper's Figure 5).
    pub max_buckets: usize,
    /// Relative error improvement below which the search stops. Default 0.15,
    /// i.e. adding a bucket must reduce `E_b` by at least 15% to be kept.
    pub min_relative_improvement: f64,
    /// Resolution at which cost values are compared (seconds). Default 1.0.
    pub resolution: f64,
    /// RNG seed used to shuffle samples into folds (deterministic selection).
    pub seed: u64,
    /// Upper bound on the number of distinct values fed to the V-Optimal DP;
    /// wider-spread samples are grouped at a coarser resolution first. Keeps
    /// the `O(n²·b)` dynamic program bounded when instantiating tens of
    /// thousands of variables.
    pub max_distinct: usize,
    /// Upper bound on the number of samples used for cross-validated bucket
    /// selection (the final histogram still uses every sample).
    pub max_selection_samples: usize,
}

impl Default for AutoConfig {
    fn default() -> Self {
        AutoConfig {
            folds: 5,
            max_buckets: 10,
            min_relative_improvement: 0.15,
            resolution: 1.0,
            seed: 0x9E3779B97F4A7C15,
            max_distinct: 120,
            max_selection_samples: 400,
        }
    }
}

/// The outcome of a bucket-count selection: the chosen bucket count and the
/// cross-validated error profile `E_b` for each candidate `b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketSelection {
    /// The selected number of buckets.
    pub bucket_count: usize,
    /// `errors[b - 1]` is the cross-validated error `E_b`.
    pub errors: Vec<f64>,
}

/// The working resolution for a sample set: the configured resolution,
/// coarsened so that the number of distinct values stays below
/// `cfg.max_distinct` (bounds the V-Optimal dynamic program).
pub fn effective_resolution(samples: &[f64], cfg: &AutoConfig) -> f64 {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &s in samples {
        lo = lo.min(s);
        hi = hi.max(s);
    }
    if !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return cfg.resolution.max(1e-9);
    }
    let span_based = (hi - lo) / cfg.max_distinct.max(2) as f64;
    cfg.resolution.max(span_based).max(1e-9)
}

/// Computes the cross-validated errors `E_b` for every `b` in `1..=max_b`
/// (the curve plotted in Figure 5(a)). Each fold runs a single V-Optimal
/// dynamic program that yields the boundaries for every candidate `b`.
pub fn cross_validated_errors(
    samples: &[f64],
    max_b: usize,
    cfg: &AutoConfig,
) -> Result<Vec<f64>, HistError> {
    if samples.is_empty() {
        return Err(HistError::EmptyInput);
    }
    if cfg.folds < 2 {
        return Err(HistError::TooFewFolds(cfg.folds));
    }
    if max_b == 0 {
        return Err(HistError::ZeroBuckets);
    }
    let resolution = effective_resolution(samples, cfg);

    // Subsample very large inputs for selection only.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let selection: Vec<f64> = if samples.len() > cfg.max_selection_samples {
        let mut idx: Vec<usize> = (0..samples.len()).collect();
        idx.shuffle(&mut rng);
        idx[..cfg.max_selection_samples]
            .iter()
            .map(|&i| samples[i])
            .collect()
    } else {
        samples.to_vec()
    };

    // When there are too few samples for f folds, fall back to the direct
    // V-Optimal error on the full sample set.
    if selection.len() < cfg.folds * 2 {
        let raw = RawDistribution::from_samples(&selection, resolution)?;
        return (1..=max_b)
            .map(|b| crate::voptimal::voptimal_error(&raw, b))
            .collect();
    }

    let mut indices: Vec<usize> = (0..selection.len()).collect();
    indices.shuffle(&mut rng);

    let fold_size = selection.len() / cfg.folds;
    let mut totals = vec![0.0f64; max_b];
    for fold in 0..cfg.folds {
        let start = fold * fold_size;
        let end = if fold + 1 == cfg.folds {
            selection.len()
        } else {
            start + fold_size
        };
        let held_out: Vec<f64> = indices[start..end].iter().map(|&i| selection[i]).collect();
        let training: Vec<f64> = indices[..start]
            .iter()
            .chain(indices[end..].iter())
            .map(|&i| selection[i])
            .collect();
        if held_out.is_empty() || training.is_empty() {
            continue;
        }
        let train_raw = RawDistribution::from_samples(&training, resolution)?;
        let held_raw = RawDistribution::from_samples(&held_out, resolution)?;
        let boundary_sets = voptimal_boundaries_all(&train_raw, max_b)?;
        for (b_index, boundaries) in boundary_sets.iter().enumerate() {
            let hist = Histogram1D::from_raw_with_boundaries(&train_raw, boundaries)?;
            totals[b_index] += squared_error(&hist, &held_raw, resolution);
        }
        // Bucket counts beyond the number of distinct training values reuse
        // the finest available histogram.
        if boundary_sets.len() < max_b {
            let hist = Histogram1D::from_raw_with_boundaries(
                &train_raw,
                &boundary_sets[boundary_sets.len() - 1],
            )?;
            let reused = squared_error(&hist, &held_raw, resolution);
            for total in &mut totals[boundary_sets.len()..max_b] {
                *total += reused;
            }
        }
    }
    Ok(totals.into_iter().map(|t| t / cfg.folds as f64).collect())
}

/// Computes the cross-validated error `E_b` of using `b` buckets for the given
/// samples.
pub fn cross_validated_error(
    samples: &[f64],
    b: usize,
    cfg: &AutoConfig,
) -> Result<f64, HistError> {
    let errors = cross_validated_errors(samples, b, cfg)?;
    Ok(*errors.last().expect("at least one bucket count evaluated"))
}

/// The squared error `SE(H, D)` between a histogram and a raw distribution:
/// the sum over the raw distribution's cost values of the squared difference
/// between the probability the histogram assigns to the value and the raw
/// probability.
///
/// The probability the histogram assigns to a raw value `c` is measured over
/// that value's *Voronoi cell* (half-way to the neighbouring raw values, with
/// `resolution`-wide cells at the extremes), so the comparison is on the same
/// scale regardless of how coarsely the raw values are spaced.
pub fn squared_error(hist: &Histogram1D, raw: &RawDistribution, resolution: f64) -> f64 {
    let values = raw.values();
    let probs = raw.probs();
    let n = values.len();
    let mut total = 0.0;
    for i in 0..n {
        let lo = if i == 0 {
            values[i] - 0.5 * resolution
        } else {
            0.5 * (values[i - 1] + values[i])
        };
        let hi = if i + 1 == n {
            values[i] + 0.5 * resolution
        } else {
            0.5 * (values[i] + values[i + 1])
        };
        let h = hist.prob_within(lo, hi);
        let d = probs[i];
        total += (h - d) * (h - d);
    }
    total
}

/// Selects the bucket count automatically (the paper's "Auto" method).
///
/// The paper increases `b` until `E_b` stops dropping significantly and keeps
/// `b − 1`. Cross-validated error curves on sparse samples are not perfectly
/// monotone, so this implementation uses the equivalent but more robust *knee*
/// form of the rule: it evaluates `E_b` for every candidate `b` and keeps the
/// smallest `b` whose error is within `min_relative_improvement` of the best
/// achievable error (relative to the error of a single bucket). On smooth
/// error curves the two formulations pick the same bucket count.
pub fn select_bucket_count(
    samples: &[f64],
    cfg: &AutoConfig,
) -> Result<BucketSelection, HistError> {
    if samples.is_empty() {
        return Err(HistError::EmptyInput);
    }
    let resolution = effective_resolution(samples, cfg);
    let distinct = RawDistribution::from_samples(samples, resolution)?.distinct_count();
    let max_b = cfg.max_buckets.max(1).min(distinct.max(1));

    let errors = cross_validated_errors(samples, max_b, cfg)?;
    let e1 = errors[0];
    let e_min = errors.iter().copied().fold(f64::INFINITY, f64::min);
    let span = (e1 - e_min).max(0.0);
    let mut chosen = 1;
    if span > 1e-15 {
        for (i, &e) in errors.iter().enumerate() {
            if (e - e_min) / span <= cfg.min_relative_improvement {
                chosen = i + 1;
                break;
            }
        }
    }
    Ok(BucketSelection {
        bucket_count: chosen.max(1),
        errors,
    })
}

/// Builds the Auto histogram: automatic bucket count + V-Optimal boundaries.
pub fn auto_histogram(samples: &[f64], cfg: &AutoConfig) -> Result<Histogram1D, HistError> {
    let selection = select_bucket_count(samples, cfg)?;
    let raw = RawDistribution::from_samples(samples, effective_resolution(samples, cfg))?;
    voptimal_histogram(&raw, selection.bucket_count)
}

/// Builds the fixed-bucket `Sta-b` histogram used as a comparison point in
/// Figure 11.
pub fn static_histogram(
    samples: &[f64],
    b: usize,
    resolution: f64,
) -> Result<Histogram1D, HistError> {
    let raw = RawDistribution::from_samples(samples, resolution)?;
    voptimal_histogram(&raw, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// A clearly bimodal sample set: two well-separated clusters.
    fn bimodal_samples(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    100.0 + rng.gen_range(-3.0..3.0)
                } else {
                    200.0 + rng.gen_range(-3.0..3.0)
                }
            })
            .collect()
    }

    #[test]
    fn cross_validated_error_decreases_initially() {
        let samples = bimodal_samples(200, 7);
        let cfg = AutoConfig::default();
        let e1 = cross_validated_error(&samples, 1, &cfg).unwrap();
        let e2 = cross_validated_error(&samples, 2, &cfg).unwrap();
        assert!(
            e2 < e1,
            "two buckets must beat one on bimodal data ({e2} vs {e1})"
        );
    }

    #[test]
    fn auto_selects_more_than_one_bucket_on_bimodal_data() {
        let samples = bimodal_samples(300, 11);
        let selection = select_bucket_count(&samples, &AutoConfig::default()).unwrap();
        assert!(
            selection.bucket_count >= 2,
            "expected at least 2 buckets, got {}",
            selection.bucket_count
        );
        assert!(!selection.errors.is_empty());
    }

    #[test]
    fn auto_selects_one_bucket_for_degenerate_data() {
        let samples = vec![50.0; 100];
        let selection = select_bucket_count(&samples, &AutoConfig::default()).unwrap();
        assert_eq!(selection.bucket_count, 1);
    }

    #[test]
    fn auto_histogram_is_normalised_and_compact() {
        let samples = bimodal_samples(400, 3);
        let cfg = AutoConfig::default();
        let h = auto_histogram(&samples, &cfg).unwrap();
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(h.bucket_count() <= cfg.max_buckets);
        // Auto should use far fewer buckets than there are distinct values.
        let raw = RawDistribution::from_samples(&samples, 1.0).unwrap();
        assert!(h.bucket_count() < raw.distinct_count());
    }

    #[test]
    fn static_histogram_has_requested_bucket_count() {
        let samples = bimodal_samples(200, 5);
        let h3 = static_histogram(&samples, 3, 1.0).unwrap();
        let h4 = static_histogram(&samples, 4, 1.0).unwrap();
        assert_eq!(h3.bucket_count(), 3);
        assert_eq!(h4.bucket_count(), 4);
    }

    #[test]
    fn errors_rejected_for_bad_config() {
        let samples = bimodal_samples(50, 1);
        let cfg = AutoConfig {
            folds: 1,
            ..AutoConfig::default()
        };
        assert!(matches!(
            cross_validated_error(&samples, 2, &cfg),
            Err(HistError::TooFewFolds(1))
        ));
        assert!(select_bucket_count(&[], &AutoConfig::default()).is_err());
        assert!(cross_validated_error(&samples, 0, &AutoConfig::default()).is_err());
    }

    #[test]
    fn small_sample_fallback_still_works() {
        let samples = vec![10.0, 12.0, 20.0];
        let cfg = AutoConfig::default();
        let e = cross_validated_error(&samples, 2, &cfg).unwrap();
        assert!(e.is_finite());
        let sel = select_bucket_count(&samples, &cfg).unwrap();
        assert!(sel.bucket_count >= 1);
    }

    #[test]
    fn squared_error_improves_with_more_buckets() {
        // Splitting the two modes into separate buckets must not increase the
        // squared error against the raw distribution.
        let raw =
            RawDistribution::from_samples(&[10.0, 10.0, 11.0, 12.0, 20.0, 20.0, 21.0, 22.0], 1.0)
                .unwrap();
        let one = voptimal_histogram(&raw, 1).unwrap();
        let two = voptimal_histogram(&raw, 2).unwrap();
        let se_one = squared_error(&one, &raw, 1.0);
        let se_two = squared_error(&two, &raw, 1.0);
        assert!(se_two <= se_one + 1e-12, "{se_two} vs {se_one}");
    }
}
