//! Raw (empirical) cost distributions.
//!
//! From the qualified trajectories of a path the paper derives a *raw cost
//! distribution*: a multiset of cost values summarised as `⟨cost, perc⟩`
//! pairs, where `perc` is the fraction of qualified trajectories that took
//! cost `cost` (§3.1). [`RawDistribution`] is that object, and is the input to
//! V-Optimal bucketing, the Auto bucket-count selection and the ground-truth
//! baseline.

use crate::error::HistError;
use serde::{Deserialize, Serialize};

/// An empirical distribution over discrete cost values.
///
/// Values are kept sorted in increasing order; probabilities sum to one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawDistribution {
    values: Vec<f64>,
    probs: Vec<f64>,
    /// Number of underlying samples, retained for space-accounting (Fig. 11(c))
    /// and for qualified-trajectory thresholds.
    sample_count: usize,
}

impl RawDistribution {
    /// Builds a raw distribution from a multiset of cost samples.
    ///
    /// Samples are rounded to the given `resolution` (e.g. 1.0 second) before
    /// being grouped; the paper works with travel times at second granularity.
    pub fn from_samples(samples: &[f64], resolution: f64) -> Result<Self, HistError> {
        if samples.is_empty() {
            return Err(HistError::EmptyInput);
        }
        let resolution = if resolution > 0.0 { resolution } else { 1.0 };
        let mut rounded: Vec<f64> = Vec::with_capacity(samples.len());
        for &s in samples {
            if !s.is_finite() || s < 0.0 {
                return Err(HistError::InvalidValue(s));
            }
            rounded.push((s / resolution).round() * resolution);
        }
        rounded.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let mut values: Vec<f64> = Vec::new();
        let mut counts: Vec<usize> = Vec::new();
        for v in rounded {
            match values.last() {
                Some(&last) if (last - v).abs() < resolution * 1e-9 => {
                    *counts.last_mut().expect("non-empty") += 1usize;
                }
                _ => {
                    values.push(v);
                    counts.push(1usize);
                }
            }
        }
        let total = samples.len() as f64;
        let probs = counts.iter().map(|&c| c as f64 / total).collect();
        Ok(RawDistribution {
            values,
            probs,
            sample_count: samples.len(),
        })
    }

    /// Builds a raw distribution directly from `(value, probability)` pairs.
    ///
    /// Probabilities are normalised to sum to one.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Result<Self, HistError> {
        if pairs.is_empty() {
            return Err(HistError::EmptyInput);
        }
        let mut sorted: Vec<(f64, f64)> = Vec::with_capacity(pairs.len());
        for &(v, p) in pairs {
            if !v.is_finite() || v < 0.0 {
                return Err(HistError::InvalidValue(v));
            }
            if !p.is_finite() || p < 0.0 {
                return Err(HistError::InvalidProbability(p));
            }
            sorted.push((v, p));
        }
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let total: f64 = sorted.iter().map(|&(_, p)| p).sum();
        if total <= 0.0 {
            return Err(HistError::InvalidProbability(total));
        }
        let mut values: Vec<f64> = Vec::with_capacity(sorted.len());
        let mut probs = Vec::with_capacity(sorted.len());
        for (v, p) in sorted {
            if let Some(&last) = values.last() {
                if (v - last).abs() < 1e-12 {
                    *probs.last_mut().expect("non-empty") += p / total;
                    continue;
                }
            }
            values.push(v);
            probs.push(p / total);
        }
        Ok(RawDistribution {
            values,
            probs,
            sample_count: pairs.len(),
        })
    }

    /// The distinct cost values, in increasing order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The probability of each distinct cost value (aligned with [`Self::values`]).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// The number of underlying samples.
    pub fn sample_count(&self) -> usize {
        self.sample_count
    }

    /// The number of distinct cost values.
    pub fn distinct_count(&self) -> usize {
        self.values.len()
    }

    /// The probability assigned to exactly `value` (zero for unseen values).
    pub fn prob_of(&self, value: f64) -> f64 {
        match self
            .values
            .binary_search_by(|v| v.partial_cmp(&value).expect("finite values"))
        {
            Ok(i) => self.probs[i],
            Err(_) => {
                // Tolerate tiny floating point differences from rounding.
                self.values
                    .iter()
                    .zip(&self.probs)
                    .find(|(v, _)| (**v - value).abs() < 1e-9)
                    .map(|(_, p)| *p)
                    .unwrap_or(0.0)
            }
        }
    }

    /// Mean cost.
    pub fn mean(&self) -> f64 {
        self.values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| v * p)
            .sum()
    }

    /// Variance of the cost.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| p * (v - mean) * (v - mean))
            .sum()
    }

    /// Minimum observed cost.
    pub fn min(&self) -> f64 {
        self.values[0]
    }

    /// Maximum observed cost.
    pub fn max(&self) -> f64 {
        *self.values.last().expect("non-empty")
    }

    /// P(cost ≤ x).
    pub fn prob_leq(&self, x: f64) -> f64 {
        self.values
            .iter()
            .zip(&self.probs)
            .take_while(|(v, _)| **v <= x)
            .map(|(_, p)| *p)
            .sum()
    }

    /// Shannon entropy (natural log) of the value distribution.
    pub fn entropy(&self) -> f64 {
        crate::divergence::entropy_of_probs(&self.probs)
    }

    /// Approximate storage (in bytes) of the raw `(cost, frequency)` pairs,
    /// used by the Figure 11(c) space-saving comparison.
    pub fn storage_bytes(&self) -> usize {
        self.values.len() * (std::mem::size_of::<f64>() * 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_samples_groups_and_normalises() {
        let d = RawDistribution::from_samples(&[10.0, 10.0, 20.0, 30.0], 1.0).unwrap();
        assert_eq!(d.values(), &[10.0, 20.0, 30.0]);
        assert!((d.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((d.prob_of(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.sample_count(), 4);
        assert_eq!(d.distinct_count(), 3);
    }

    #[test]
    fn from_samples_rounds_to_resolution() {
        let d = RawDistribution::from_samples(&[10.2, 9.9, 10.4], 1.0).unwrap();
        assert_eq!(d.values(), &[10.0]);
        assert!((d.prob_of(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert!(RawDistribution::from_samples(&[], 1.0).is_err());
        assert!(RawDistribution::from_samples(&[-1.0], 1.0).is_err());
        assert!(RawDistribution::from_samples(&[f64::NAN], 1.0).is_err());
        assert!(RawDistribution::from_pairs(&[]).is_err());
        assert!(RawDistribution::from_pairs(&[(1.0, -0.5)]).is_err());
    }

    #[test]
    fn from_pairs_normalises_and_merges_duplicates() {
        let d = RawDistribution::from_pairs(&[(5.0, 2.0), (10.0, 1.0), (5.0, 1.0)]).unwrap();
        assert_eq!(d.values(), &[5.0, 10.0]);
        assert!((d.prob_of(5.0) - 0.75).abs() < 1e-12);
        assert!((d.prob_of(10.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn moments_and_bounds() {
        let d = RawDistribution::from_samples(&[10.0, 20.0, 20.0, 30.0], 1.0).unwrap();
        assert!((d.mean() - 20.0).abs() < 1e-12);
        assert_eq!(d.min(), 10.0);
        assert_eq!(d.max(), 30.0);
        assert!(d.variance() > 0.0);
        assert!((d.prob_leq(20.0) - 0.75).abs() < 1e-12);
        assert_eq!(d.prob_leq(5.0), 0.0);
        assert!((d.prob_leq(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_zero_for_degenerate_distribution() {
        let d = RawDistribution::from_samples(&[42.0, 42.0, 42.0], 1.0).unwrap();
        assert!(d.entropy().abs() < 1e-12);
        let u = RawDistribution::from_samples(&[1.0, 2.0, 3.0, 4.0], 1.0).unwrap();
        assert!((u.entropy() - (4.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn storage_bytes_grows_with_distinct_values() {
        let few = RawDistribution::from_samples(&[1.0, 1.0, 1.0], 1.0).unwrap();
        let many = RawDistribution::from_samples(&[1.0, 2.0, 3.0, 4.0], 1.0).unwrap();
        assert!(many.storage_bytes() > few.storage_bytes());
    }
}
