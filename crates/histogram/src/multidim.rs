//! Multi-dimensional histograms over hyper-buckets (§3.2).
//!
//! A multi-dimensional histogram represents the joint distribution of the
//! per-edge costs of a path: each dimension corresponds to one edge, a
//! hyper-bucket is one bucket per dimension, and each hyper-bucket carries the
//! probability that all edge costs fall inside it simultaneously.
//!
//! Construction follows the paper: the bucket count of each dimension is
//! selected automatically (Auto, §3.1), V-Optimal picks the bucket boundaries
//! per dimension, and the probability of each hyper-bucket is the fraction of
//! joint samples falling in it (Figure 6).

use crate::auto::{select_bucket_count, AutoConfig};
use crate::bucket::Bucket;
use crate::error::HistError;
use crate::histogram1d::Histogram1D;
use crate::raw::RawDistribution;
use crate::voptimal::voptimal_boundaries;
use serde::{Deserialize, Serialize};

/// A multi-dimensional histogram: a set of `(hyper-bucket, probability)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramNd {
    dims: usize,
    /// Per-dimension axis buckets (disjoint, sorted). Hyper-buckets are drawn
    /// from the cross product of these axes, but only non-empty cells are stored.
    axes: Vec<Vec<Bucket>>,
    /// Non-empty cells: per-dimension bucket indices into `axes`, plus probability.
    cells: Vec<(Vec<u32>, f64)>,
}

impl HistogramNd {
    /// Builds an N-dimensional histogram from joint samples.
    ///
    /// `samples[i]` is the i-th joint observation (one cost per dimension).
    /// Per-dimension bucket counts are chosen with the Auto method and bucket
    /// boundaries with V-Optimal; cell probabilities are empirical fractions.
    pub fn from_samples(samples: &[Vec<f64>], cfg: &AutoConfig) -> Result<Self, HistError> {
        if samples.is_empty() {
            return Err(HistError::EmptyInput);
        }
        let dims = samples[0].len();
        if dims == 0 {
            return Err(HistError::EmptyInput);
        }
        for s in samples {
            if s.len() != dims {
                return Err(HistError::DimensionMismatch {
                    expected: dims,
                    actual: s.len(),
                });
            }
        }

        // Per-dimension axes.
        let mut axes: Vec<Vec<Bucket>> = Vec::with_capacity(dims);
        for d in 0..dims {
            let column: Vec<f64> = samples.iter().map(|s| s[d]).collect();
            let selection = select_bucket_count(&column, cfg)?;
            let resolution = crate::auto::effective_resolution(&column, cfg);
            let raw = RawDistribution::from_samples(&column, resolution)?;
            let boundaries = voptimal_boundaries(&raw, selection.bucket_count)?;
            let hist = Histogram1D::from_raw_with_boundaries(&raw, &boundaries)?;
            axes.push(hist.buckets().to_vec());
        }

        Self::from_samples_with_axes(samples, axes)
    }

    /// Builds an N-dimensional histogram from joint samples using externally
    /// chosen per-dimension axes (used by tests and by callers that want fixed
    /// `Sta-b` axes).
    pub fn from_samples_with_axes(
        samples: &[Vec<f64>],
        axes: Vec<Vec<Bucket>>,
    ) -> Result<Self, HistError> {
        if samples.is_empty() || axes.is_empty() {
            return Err(HistError::EmptyInput);
        }
        let dims = axes.len();
        let mut counts: std::collections::HashMap<Vec<u32>, usize> =
            std::collections::HashMap::new();
        for sample in samples {
            if sample.len() != dims {
                return Err(HistError::DimensionMismatch {
                    expected: dims,
                    actual: sample.len(),
                });
            }
            let mut key = Vec::with_capacity(dims);
            for (d, &value) in sample.iter().enumerate() {
                key.push(locate(&axes[d], value) as u32);
            }
            *counts.entry(key).or_insert(0) += 1;
        }
        let total = samples.len() as f64;
        let mut cells: Vec<(Vec<u32>, f64)> = counts
            .into_iter()
            .map(|(key, count)| (key, count as f64 / total))
            .collect();
        cells.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(HistogramNd { dims, axes, cells })
    }

    /// Builds a one-dimensional [`HistogramNd`] from a 1-D histogram, so that
    /// unit-path weights and non-unit-path weights share a representation.
    pub fn from_histogram1d(hist: &Histogram1D) -> Self {
        let axes = vec![hist.buckets().to_vec()];
        let cells = hist
            .probs()
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(i, &p)| (vec![i as u32], p))
            .collect();
        HistogramNd {
            dims: 1,
            axes,
            cells,
        }
    }

    /// Creates a histogram directly from axes and cells (probabilities are
    /// normalised). Intended for tests and for deserialised data.
    pub fn from_cells(
        axes: Vec<Vec<Bucket>>,
        cells: Vec<(Vec<u32>, f64)>,
    ) -> Result<Self, HistError> {
        if axes.is_empty() || cells.is_empty() {
            return Err(HistError::EmptyInput);
        }
        let dims = axes.len();
        let total: f64 = cells.iter().map(|(_, p)| *p).sum();
        if total <= 0.0 {
            return Err(HistError::InvalidProbability(total));
        }
        let mut normalised = Vec::with_capacity(cells.len());
        for (key, p) in cells {
            if key.len() != dims {
                return Err(HistError::DimensionMismatch {
                    expected: dims,
                    actual: key.len(),
                });
            }
            if !p.is_finite() || p < 0.0 {
                return Err(HistError::InvalidProbability(p));
            }
            for (d, &idx) in key.iter().enumerate() {
                if idx as usize >= axes[d].len() {
                    return Err(HistError::ZeroBuckets);
                }
            }
            normalised.push((key, p / total));
        }
        normalised.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(HistogramNd {
            dims,
            axes,
            cells: normalised,
        })
    }

    /// Restores a histogram from axes and cells captured from an existing
    /// histogram (e.g. a persisted snapshot), **without** re-normalising the
    /// probabilities, so the restored histogram is bit-identical to the one
    /// that was serialized. Contrast [`Self::from_cells`], which normalises
    /// and therefore cannot round-trip floating-point mass exactly.
    ///
    /// Validates shape only: non-empty axes and cells, per-cell key length
    /// matching the dimension count, indices in axis range, finite
    /// non-negative probabilities. Cells must already be sorted by key (the
    /// order every constructor produces and every accessor exposes).
    pub fn from_raw_parts(
        axes: Vec<Vec<Bucket>>,
        cells: Vec<(Vec<u32>, f64)>,
    ) -> Result<Self, HistError> {
        if axes.is_empty() || cells.is_empty() || axes.iter().any(|a| a.is_empty()) {
            return Err(HistError::EmptyInput);
        }
        let dims = axes.len();
        for (key, p) in &cells {
            if key.len() != dims {
                return Err(HistError::DimensionMismatch {
                    expected: dims,
                    actual: key.len(),
                });
            }
            if !p.is_finite() || *p < 0.0 {
                return Err(HistError::InvalidProbability(*p));
            }
            for (d, &idx) in key.iter().enumerate() {
                if idx as usize >= axes[d].len() {
                    return Err(HistError::ZeroBuckets);
                }
            }
        }
        if cells.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err(HistError::EmptyInput);
        }
        Ok(HistogramNd { dims, axes, cells })
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of non-empty hyper-buckets.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The per-dimension axis buckets.
    pub fn axes(&self) -> &[Vec<Bucket>] {
        &self.axes
    }

    /// Iterates over `(hyper-bucket, probability)` pairs, materialising the
    /// per-dimension buckets of each cell.
    pub fn iter_cells(&self) -> impl Iterator<Item = (Vec<Bucket>, f64)> + '_ {
        self.cells.iter().map(move |(key, p)| {
            let buckets = key
                .iter()
                .enumerate()
                .map(|(d, &i)| self.axes[d][i as usize])
                .collect();
            (buckets, *p)
        })
    }

    /// Raw access to the cell index keys and probabilities.
    pub fn cells(&self) -> &[(Vec<u32>, f64)] {
        &self.cells
    }

    /// Marginal distribution over a subset of dimensions (in the given order).
    pub fn marginal(&self, dims: &[usize]) -> Result<HistogramNd, HistError> {
        if dims.is_empty() {
            return Err(HistError::EmptyInput);
        }
        for &d in dims {
            if d >= self.dims {
                return Err(HistError::DimensionMismatch {
                    expected: self.dims,
                    actual: d,
                });
            }
        }
        let axes: Vec<Vec<Bucket>> = dims.iter().map(|&d| self.axes[d].clone()).collect();
        let mut acc: std::collections::HashMap<Vec<u32>, f64> = std::collections::HashMap::new();
        for (key, p) in &self.cells {
            let projected: Vec<u32> = dims.iter().map(|&d| key[d]).collect();
            *acc.entry(projected).or_insert(0.0) += p;
        }
        let cells: Vec<(Vec<u32>, f64)> = acc.into_iter().collect();
        HistogramNd::from_cells(axes, cells)
    }

    /// Marginal of a single dimension as a 1-D histogram.
    pub fn marginal_1d(&self, dim: usize) -> Result<Histogram1D, HistError> {
        let m = self.marginal(&[dim])?;
        let entries: Vec<(Bucket, f64)> =
            m.iter_cells().map(|(buckets, p)| (buckets[0], p)).collect();
        Histogram1D::from_overlapping(&entries)
    }

    /// Shannon entropy (natural log) over the hyper-bucket probabilities.
    ///
    /// This is the `H(C_P)` quantity appearing in Theorems 1–3.
    pub fn entropy(&self) -> f64 {
        crate::divergence::entropy_of_probs(&self.cells.iter().map(|(_, p)| *p).collect::<Vec<_>>())
    }

    /// Transforms the joint distribution into the path's (univariate) cost
    /// distribution (§4.2): each hyper-bucket becomes the bucket whose bounds
    /// are the sums of the per-dimension bounds, and the resulting overlapping
    /// buckets are re-arranged into a disjoint 1-D histogram.
    pub fn to_cost_histogram(&self) -> Result<Histogram1D, HistError> {
        let entries: Vec<(Bucket, f64)> = self
            .iter_cells()
            .map(|(buckets, p)| {
                let bucket = buckets.iter().skip(1).fold(buckets[0], |acc, b| acc.sum(b));
                (bucket, p)
            })
            .collect();
        Histogram1D::from_overlapping(&entries)
    }

    /// The minimum possible total cost (sum of the lowest bucket lower bounds
    /// present in any cell).
    pub fn min_total(&self) -> f64 {
        self.iter_cells()
            .map(|(buckets, _)| buckets.iter().map(|b| b.lo).sum::<f64>())
            .fold(f64::INFINITY, f64::min)
    }

    /// The maximum possible total cost.
    pub fn max_total(&self) -> f64 {
        self.iter_cells()
            .map(|(buckets, _)| buckets.iter().map(|b| b.hi).sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Approximate storage in bytes: per cell one probability plus one bucket
    /// index per dimension, plus the axis bucket bounds.
    pub fn storage_bytes(&self) -> usize {
        let cell_bytes = self.cells.len() * (std::mem::size_of::<f64>() + self.dims * 4);
        let axis_bytes: usize = self
            .axes
            .iter()
            .map(|a| a.len() * 2 * std::mem::size_of::<f64>())
            .sum();
        cell_bytes + axis_bytes
    }
}

/// Index of the axis bucket containing `value`, clamping values outside the
/// covered range to the nearest bucket.
fn locate(axis: &[Bucket], value: f64) -> usize {
    if value < axis[0].lo {
        return 0;
    }
    for (i, b) in axis.iter().enumerate() {
        if b.contains(value) {
            return i;
        }
    }
    axis.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: f64, hi: f64) -> Bucket {
        Bucket::new(lo, hi).unwrap()
    }

    /// The 2-D example of Figure 6: costs on edge a vs edge b.
    fn figure6_samples() -> Vec<Vec<f64>> {
        // (cea, ceb, count) points roughly following Figure 6(a).
        let points = [
            (50.0, 80.0, 110),
            (20.0, 20.0, 35),
            (30.0, 25.0, 25),
            (25.0, 85.0, 20),
            (60.0, 30.0, 20),
            (70.0, 30.0, 20),
            (80.0, 85.0, 20),
            (85.0, 90.0, 10),
            (45.0, 75.0, 25),
        ];
        let mut samples = Vec::new();
        for &(a, bb, n) in &points {
            for _ in 0..n {
                samples.push(vec![a, bb]);
            }
        }
        samples
    }

    #[test]
    fn from_samples_builds_normalised_joint() {
        let nd = HistogramNd::from_samples(&figure6_samples(), &AutoConfig::default()).unwrap();
        assert_eq!(nd.dims(), 2);
        assert!(nd.cell_count() >= 2);
        let total: f64 = nd.cells().iter().map(|(_, p)| *p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let samples = vec![vec![1.0, 2.0], vec![1.0]];
        assert!(matches!(
            HistogramNd::from_samples(&samples, &AutoConfig::default()),
            Err(HistError::DimensionMismatch { .. })
        ));
        assert!(HistogramNd::from_samples(&[], &AutoConfig::default()).is_err());
    }

    #[test]
    fn marginals_sum_to_one_and_match_column_distributions() {
        let samples = figure6_samples();
        let nd = HistogramNd::from_samples(&samples, &AutoConfig::default()).unwrap();
        for d in 0..2 {
            let m = nd.marginal_1d(d).unwrap();
            assert!((m.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
            // The marginal mean should be close to the column mean.
            let col_mean: f64 = samples.iter().map(|s| s[d]).sum::<f64>() / samples.len() as f64;
            assert!(
                (m.mean() - col_mean).abs() < 15.0,
                "marginal mean {} vs column mean {}",
                m.mean(),
                col_mean
            );
        }
    }

    #[test]
    fn marginal_over_subset_preserves_mass() {
        let samples: Vec<Vec<f64>> = (0..200)
            .map(|i| {
                vec![
                    (i % 7) as f64 * 10.0,
                    (i % 5) as f64 * 20.0,
                    (i % 3) as f64 * 30.0,
                ]
            })
            .collect();
        let nd = HistogramNd::from_samples(&samples, &AutoConfig::default()).unwrap();
        let m = nd.marginal(&[0, 2]).unwrap();
        assert_eq!(m.dims(), 2);
        let total: f64 = m.cells().iter().map(|(_, p)| *p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(nd.marginal(&[5]).is_err());
        assert!(nd.marginal(&[]).is_err());
    }

    #[test]
    fn paper_figure7_joint_to_cost_distribution() {
        // Figure 7's joint distribution:
        //   ce1 ∈ [20,30) × ce2 ∈ [20,40): 0.30    ce1 ∈ [30,50) × ce2 ∈ [20,40): 0.25
        //   ce1 ∈ [20,30) × ce2 ∈ [40,60): 0.20    ce1 ∈ [30,50) × ce2 ∈ [40,60): 0.25
        let axes = vec![
            vec![b(20.0, 30.0), b(30.0, 50.0)],
            vec![b(20.0, 40.0), b(40.0, 60.0)],
        ];
        let cells = vec![
            (vec![0u32, 0u32], 0.30),
            (vec![1, 0], 0.25),
            (vec![0, 1], 0.20),
            (vec![1, 1], 0.25),
        ];
        let nd = HistogramNd::from_cells(axes, cells).unwrap();
        let cost = nd.to_cost_histogram().unwrap();
        // Final marginal from the paper:
        // [40,50): 0.1000, [50,60): 0.1625, [60,70): 0.2292, [70,90): 0.3833, [90,110): 0.1250
        let expect = [
            (40.0, 50.0, 0.1),
            (50.0, 60.0, 0.1625),
            (60.0, 70.0, 0.2291666),
            (70.0, 90.0, 0.3833333),
            (90.0, 110.0, 0.125),
        ];
        assert_eq!(cost.bucket_count(), expect.len());
        for (i, &(lo, hi, p)) in expect.iter().enumerate() {
            assert!((cost.buckets()[i].lo - lo).abs() < 1e-9);
            assert!((cost.buckets()[i].hi - hi).abs() < 1e-9);
            assert!(
                (cost.probs()[i] - p).abs() < 1e-5,
                "prob {i}: {}",
                cost.probs()[i]
            );
        }
    }

    #[test]
    fn from_raw_parts_round_trips_without_renormalising() {
        let nd = HistogramNd::from_samples(&figure6_samples(), &AutoConfig::default()).unwrap();
        let back = HistogramNd::from_raw_parts(nd.axes().to_vec(), nd.cells().to_vec()).unwrap();
        assert_eq!(back, nd);
        // from_cells would renormalise; raw parts must not. Feed un-normalised
        // mass and check it survives bit-for-bit.
        let axes = vec![vec![b(0.0, 10.0), b(10.0, 20.0)]];
        let cells = vec![(vec![0u32], 0.1), (vec![1u32], 0.2)];
        let raw = HistogramNd::from_raw_parts(axes.clone(), cells.clone()).unwrap();
        assert_eq!(raw.cells(), cells.as_slice());
        // Shape violations are rejected: empty, bad key length, out-of-range
        // index, negative mass, unsorted cells.
        assert!(HistogramNd::from_raw_parts(vec![], vec![]).is_err());
        assert!(HistogramNd::from_raw_parts(axes.clone(), vec![(vec![0, 0], 1.0)]).is_err());
        assert!(HistogramNd::from_raw_parts(axes.clone(), vec![(vec![7], 1.0)]).is_err());
        assert!(HistogramNd::from_raw_parts(axes.clone(), vec![(vec![0], -1.0)]).is_err());
        assert!(
            HistogramNd::from_raw_parts(axes, vec![(vec![1u32], 0.5), (vec![0u32], 0.5)]).is_err()
        );
    }

    #[test]
    fn entropy_of_joint_at_least_entropy_of_marginals_under_dependence() {
        // A perfectly correlated joint: knowing one dimension determines the other.
        let axes = vec![
            vec![b(0.0, 10.0), b(10.0, 20.0)],
            vec![b(0.0, 10.0), b(10.0, 20.0)],
        ];
        let correlated =
            HistogramNd::from_cells(axes.clone(), vec![(vec![0, 0], 0.5), (vec![1, 1], 0.5)])
                .unwrap();
        let independent = HistogramNd::from_cells(
            axes,
            vec![
                (vec![0, 0], 0.25),
                (vec![0, 1], 0.25),
                (vec![1, 0], 0.25),
                (vec![1, 1], 0.25),
            ],
        )
        .unwrap();
        assert!(correlated.entropy() < independent.entropy());
        // Marginals of both are identical.
        let m1 = correlated.marginal_1d(0).unwrap();
        let m2 = independent.marginal_1d(0).unwrap();
        assert!((m1.probs()[0] - m2.probs()[0]).abs() < 1e-12);
    }

    #[test]
    fn from_histogram1d_round_trips() {
        let h = Histogram1D::from_entries(vec![(b(0.0, 10.0), 0.4), (b(10.0, 30.0), 0.6)]).unwrap();
        let nd = HistogramNd::from_histogram1d(&h);
        assert_eq!(nd.dims(), 1);
        let back = nd.marginal_1d(0).unwrap();
        assert_eq!(back.bucket_count(), 2);
        assert!((back.probs()[0] - 0.4).abs() < 1e-12);
        let cost = nd.to_cost_histogram().unwrap();
        assert!((cost.mean() - h.mean()).abs() < 1e-9);
    }

    #[test]
    fn min_max_total_bound_the_cost_histogram() {
        let nd = HistogramNd::from_samples(&figure6_samples(), &AutoConfig::default()).unwrap();
        let cost = nd.to_cost_histogram().unwrap();
        assert!(cost.min() >= nd.min_total() - 1e-9);
        assert!(cost.max() <= nd.max_total() + 1e-9);
    }

    #[test]
    fn storage_accounting_is_positive_and_monotone() {
        let small =
            HistogramNd::from_samples(&figure6_samples()[..50], &AutoConfig::default()).unwrap();
        let large = HistogramNd::from_samples(&figure6_samples(), &AutoConfig::default()).unwrap();
        assert!(small.storage_bytes() > 0);
        assert!(large.storage_bytes() >= small.storage_bytes());
    }

    #[test]
    fn locate_clamps_out_of_range_values() {
        let axis = vec![b(0.0, 10.0), b(10.0, 20.0)];
        assert_eq!(locate(&axis, -5.0), 0);
        assert_eq!(locate(&axis, 5.0), 0);
        assert_eq!(locate(&axis, 15.0), 1);
        assert_eq!(locate(&axis, 100.0), 1);
    }
}
