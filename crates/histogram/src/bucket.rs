//! Half-open cost buckets `[lo, hi)`.

use crate::error::HistError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open range of travel costs `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound.
    pub hi: f64,
}

impl Bucket {
    /// Creates a bucket, requiring `hi > lo` and both bounds finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, HistError> {
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(HistError::EmptyBucket { lo, hi });
        }
        Ok(Bucket { lo, hi })
    }

    /// Creates a bucket without validation (callers guarantee `hi > lo`).
    pub(crate) fn new_unchecked(lo: f64, hi: f64) -> Self {
        debug_assert!(hi > lo, "bucket [{lo}, {hi}) is empty");
        Bucket { lo, hi }
    }

    /// Width of the bucket.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Midpoint of the bucket.
    #[inline]
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// `true` if `x` is inside `[lo, hi)`.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x < self.hi
    }

    /// The overlap length between this bucket and `[lo, hi)` of `other`.
    pub fn overlap(&self, other: &Bucket) -> f64 {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0.0)
    }

    /// `true` if the two buckets overlap on a set of positive measure.
    pub fn overlaps(&self, other: &Bucket) -> bool {
        self.overlap(other) > 0.0
    }

    /// Component-wise sum of two buckets: `[lo1+lo2, hi1+hi2)`.
    ///
    /// This is the operation used when transforming a hyper-bucket of a joint
    /// distribution into a bucket of the path cost distribution (§4.2).
    pub fn sum(&self, other: &Bucket) -> Bucket {
        Bucket::new_unchecked(self.lo + other.lo, self.hi + other.hi)
    }

    /// The fraction of this bucket's width that lies within `other`, assuming
    /// uniform density within the bucket. Used when re-arranging overlapping
    /// buckets into disjoint ones.
    pub fn fraction_within(&self, other: &Bucket) -> f64 {
        if self.width() <= 0.0 {
            return 0.0;
        }
        self.overlap(other) / self.width()
    }
}

impl fmt::Display for Bucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3})", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_bounds() {
        assert!(Bucket::new(1.0, 2.0).is_ok());
        assert!(Bucket::new(2.0, 2.0).is_err());
        assert!(Bucket::new(3.0, 2.0).is_err());
        assert!(Bucket::new(f64::NAN, 2.0).is_err());
        assert!(Bucket::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn width_midpoint_contains() {
        let b = Bucket::new(10.0, 30.0).unwrap();
        assert_eq!(b.width(), 20.0);
        assert_eq!(b.midpoint(), 20.0);
        assert!(b.contains(10.0));
        assert!(b.contains(29.999));
        assert!(!b.contains(30.0));
        assert!(!b.contains(9.999));
    }

    #[test]
    fn overlap_and_fraction() {
        let a = Bucket::new(0.0, 10.0).unwrap();
        let b = Bucket::new(5.0, 20.0).unwrap();
        let c = Bucket::new(12.0, 15.0).unwrap();
        assert_eq!(a.overlap(&b), 5.0);
        assert_eq!(b.overlap(&a), 5.0);
        assert_eq!(a.overlap(&c), 0.0);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!((a.fraction_within(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sum_matches_paper_example() {
        // Hyper-bucket ⟨[20,30), [20,40)⟩ becomes bucket [40, 70).
        let a = Bucket::new(20.0, 30.0).unwrap();
        let b = Bucket::new(20.0, 40.0).unwrap();
        let s = a.sum(&b);
        assert_eq!(s.lo, 40.0);
        assert_eq!(s.hi, 70.0);
    }

    #[test]
    fn display_formats_range() {
        let b = Bucket::new(1.0, 2.5).unwrap();
        assert_eq!(b.to_string(), "[1.000, 2.500)");
    }
}
