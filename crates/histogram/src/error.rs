//! Error types for distribution construction.

use std::fmt;

/// Errors produced by histogram and distribution operations.
#[derive(Debug, Clone, PartialEq)]
pub enum HistError {
    /// A distribution requires at least one sample/value.
    EmptyInput,
    /// A probability or frequency was negative or not finite.
    InvalidProbability(f64),
    /// A cost value was negative or not finite.
    InvalidValue(f64),
    /// The requested number of buckets was zero.
    ZeroBuckets,
    /// Multivariate samples did not all have the same dimensionality.
    DimensionMismatch { expected: usize, actual: usize },
    /// A bucket was constructed with `hi <= lo`.
    EmptyBucket { lo: f64, hi: f64 },
    /// Fewer cross-validation folds than 2 were requested.
    TooFewFolds(usize),
}

impl fmt::Display for HistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistError::EmptyInput => write!(f, "distribution requires at least one value"),
            HistError::InvalidProbability(p) => write!(f, "invalid probability {p}"),
            HistError::InvalidValue(v) => write!(f, "invalid cost value {v}"),
            HistError::ZeroBuckets => write!(f, "bucket count must be at least one"),
            HistError::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected}-dimensional sample, got {actual}")
            }
            HistError::EmptyBucket { lo, hi } => {
                write!(f, "bucket [{lo}, {hi}) is empty or inverted")
            }
            HistError::TooFewFolds(folds) => {
                write!(f, "cross-validation requires at least 2 folds, got {folds}")
            }
        }
    }
}

impl std::error::Error for HistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(HistError::EmptyInput.to_string().contains("at least one"));
        assert!(HistError::DimensionMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains('3'));
    }
}
