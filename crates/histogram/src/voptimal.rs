//! V-Optimal histogram construction.
//!
//! Given a raw cost distribution and a bucket count `b`, V-Optimal \[12\]
//! chooses bucket boundaries that minimise the total squared error incurred by
//! approximating the raw distribution with per-bucket summaries. Because the
//! histograms here use *uniform-within-bucket* semantics over the cost axis,
//! the within-bucket error is measured as the probability-weighted variance of
//! the cost values assigned to the bucket: boundaries therefore end up at the
//! gaps between modes of the raw distribution, which is what makes the Auto
//! histograms track multi-modal travel-time data (Figure 5). The dynamic
//! program runs in `O(n² · b)` over the `n` distinct values, which is ample
//! for the per-edge / per-path sample sizes encountered here.

use crate::error::HistError;
use crate::histogram1d::Histogram1D;
use crate::raw::RawDistribution;

/// Computes the V-Optimal bucket boundaries for `raw` with exactly `b` buckets.
///
/// The result contains the index of the first raw value of each bucket
/// (always starting with `0`) and is suitable for
/// [`Histogram1D::from_raw_with_boundaries`]. When `b` is at least the number
/// of distinct values every value gets its own bucket.
pub fn voptimal_boundaries(raw: &RawDistribution, b: usize) -> Result<Vec<usize>, HistError> {
    let mut all = voptimal_boundaries_all(raw, b)?;
    Ok(all.pop().expect("at least one bucket count requested"))
}

/// Computes the V-Optimal boundaries for every bucket count `1..=max_b` from a
/// single dynamic program — the boundary sets share the same DP table, so the
/// cross-validated bucket-count selection (§3.1) can evaluate all candidate
/// counts at the cost of one.
///
/// `result[b - 1]` holds the boundaries for `b` buckets (capped at the number
/// of distinct values).
pub fn voptimal_boundaries_all(
    raw: &RawDistribution,
    max_b: usize,
) -> Result<Vec<Vec<usize>>, HistError> {
    if max_b == 0 {
        return Err(HistError::ZeroBuckets);
    }
    let probs = raw.probs();
    let values = raw.values();
    let n = probs.len();
    let b = max_b.min(n);

    // Prefix sums of p, p·v and p·v² for O(1) within-bucket weighted-variance
    // queries.
    let mut pw = vec![0.0f64; n + 1];
    let mut pv = vec![0.0f64; n + 1];
    let mut pvv = vec![0.0f64; n + 1];
    for i in 0..n {
        pw[i + 1] = pw[i] + probs[i];
        pv[i + 1] = pv[i] + probs[i] * values[i];
        pvv[i + 1] = pvv[i] + probs[i] * values[i] * values[i];
    }
    // Weighted within-bucket variance of grouping values [i, j) into one bucket:
    //   Σ p v² − (Σ p v)² / Σ p
    let sse = |i: usize, j: usize| -> f64 {
        let w = pw[j] - pw[i];
        if w <= 0.0 {
            return 0.0;
        }
        let sum_v = pv[j] - pv[i];
        let sum_vv = pvv[j] - pvv[i];
        (sum_vv - sum_v * sum_v / w).max(0.0)
    };

    // dp[k][j]: minimal SSE of covering the first j values with k buckets.
    let inf = f64::INFINITY;
    let mut dp = vec![vec![inf; n + 1]; b + 1];
    let mut choice = vec![vec![0usize; n + 1]; b + 1];
    dp[0][0] = 0.0;
    for k in 1..=b {
        for j in k..=n {
            for i in (k - 1)..j {
                if dp[k - 1][i] == inf {
                    continue;
                }
                let cost = dp[k - 1][i] + sse(i, j);
                if cost < dp[k][j] {
                    dp[k][j] = cost;
                    choice[k][j] = i;
                }
            }
        }
    }

    // Recover the boundaries for every bucket count up to b.
    let mut all = Vec::with_capacity(b);
    for target in 1..=b {
        let mut boundaries = vec![0usize; target];
        let mut j = n;
        for k in (1..=target).rev() {
            let i = choice[k][j];
            boundaries[k - 1] = i;
            j = i;
        }
        all.push(boundaries);
    }
    Ok(all)
}

/// Builds the V-Optimal histogram of `raw` with `b` buckets.
pub fn voptimal_histogram(raw: &RawDistribution, b: usize) -> Result<Histogram1D, HistError> {
    let boundaries = voptimal_boundaries(raw, b)?;
    Histogram1D::from_raw_with_boundaries(raw, &boundaries)
}

/// The total squared error between `raw` and its V-Optimal histogram with `b`
/// buckets (the quantity the DP minimises); exposed for tests and diagnostics.
pub fn voptimal_error(raw: &RawDistribution, b: usize) -> Result<f64, HistError> {
    let boundaries = voptimal_boundaries(raw, b)?;
    let probs = raw.probs();
    let values = raw.values();
    let mut err = 0.0;
    for (i, &start) in boundaries.iter().enumerate() {
        let end = if i + 1 < boundaries.len() {
            boundaries[i + 1]
        } else {
            probs.len()
        };
        let weight: f64 = probs[start..end].iter().sum();
        if weight <= 0.0 {
            continue;
        }
        let mean: f64 = values[start..end]
            .iter()
            .zip(&probs[start..end])
            .map(|(v, p)| v * p)
            .sum::<f64>()
            / weight;
        err += values[start..end]
            .iter()
            .zip(&probs[start..end])
            .map(|(v, p)| p * (v - mean) * (v - mean))
            .sum::<f64>();
    }
    Ok(err)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(pairs: &[(f64, f64)]) -> RawDistribution {
        RawDistribution::from_pairs(pairs).unwrap()
    }

    #[test]
    fn one_bucket_covers_everything() {
        let r = raw(&[(10.0, 0.2), (20.0, 0.5), (30.0, 0.3)]);
        let bounds = voptimal_boundaries(&r, 1).unwrap();
        assert_eq!(bounds, vec![0]);
        let h = voptimal_histogram(&r, 1).unwrap();
        assert_eq!(h.bucket_count(), 1);
        assert!((h.probs()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn enough_buckets_isolates_every_value() {
        let r = raw(&[(10.0, 0.2), (20.0, 0.5), (30.0, 0.3)]);
        let bounds = voptimal_boundaries(&r, 3).unwrap();
        assert_eq!(bounds, vec![0, 1, 2]);
        assert_eq!(voptimal_error(&r, 3).unwrap(), 0.0);
        // Asking for more buckets than values degrades gracefully.
        let bounds = voptimal_boundaries(&r, 10).unwrap();
        assert_eq!(bounds.len(), 3);
    }

    #[test]
    fn splits_where_frequencies_differ_most() {
        // Two clearly different regimes: low-probability values then
        // high-probability values. With 2 buckets the optimal cut separates them.
        let r = raw(&[
            (10.0, 0.05),
            (11.0, 0.05),
            (12.0, 0.05),
            (50.0, 0.30),
            (51.0, 0.30),
            (52.0, 0.25),
        ]);
        let bounds = voptimal_boundaries(&r, 2).unwrap();
        assert_eq!(bounds, vec![0, 3]);
    }

    #[test]
    fn error_is_monotone_non_increasing_in_bucket_count() {
        let r = raw(&[
            (1.0, 0.05),
            (2.0, 0.1),
            (3.0, 0.2),
            (4.0, 0.05),
            (5.0, 0.3),
            (6.0, 0.05),
            (7.0, 0.15),
            (8.0, 0.1),
        ]);
        let mut prev = f64::INFINITY;
        for b in 1..=8 {
            let e = voptimal_error(&r, b).unwrap();
            assert!(
                e <= prev + 1e-12,
                "error must not increase with more buckets (b={b}, e={e}, prev={prev})"
            );
            prev = e;
        }
        assert!(voptimal_error(&r, 8).unwrap() < 1e-15);
    }

    #[test]
    fn zero_buckets_rejected() {
        let r = raw(&[(1.0, 1.0)]);
        assert!(matches!(
            voptimal_boundaries(&r, 0),
            Err(HistError::ZeroBuckets)
        ));
    }

    #[test]
    fn histogram_mass_matches_raw_mass_per_bucket() {
        let r = raw(&[(10.0, 0.25), (20.0, 0.25), (80.0, 0.5)]);
        let h = voptimal_histogram(&r, 2).unwrap();
        assert_eq!(h.bucket_count(), 2);
        let total: f64 = h.probs().iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        // The large value should sit alone in the second bucket.
        assert!((h.probs()[1] - 0.5).abs() < 1e-12);
    }
}
