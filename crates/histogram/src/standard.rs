//! Standard-distribution fits (Gaussian, Gamma, Exponential).
//!
//! Figure 1(b) and Figure 11(a) of the paper compare the raw travel-time
//! distribution against maximum-likelihood fits of standard distributions and
//! show that travel costs typically do not follow any of them. This module
//! provides those fits and a discretisation into [`Histogram1D`] so they can
//! be compared with the same KL-divergence machinery as the Auto histograms.

use crate::bucket::Bucket;
use crate::error::HistError;
use crate::histogram1d::Histogram1D;
use serde::{Deserialize, Serialize};

/// A fitted univariate distribution that can be evaluated and discretised.
pub trait StandardFit {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;
    /// Mean of the fitted distribution.
    fn mean(&self) -> f64;
    /// Discretises the fit into a histogram over `[lo, hi)` with `cells`
    /// equal-width buckets (renormalised over that range).
    fn to_histogram(&self, lo: f64, hi: f64, cells: usize) -> Result<Histogram1D, HistError> {
        if cells == 0 {
            return Err(HistError::ZeroBuckets);
        }
        if hi <= lo {
            return Err(HistError::EmptyBucket { lo, hi });
        }
        let width = (hi - lo) / cells as f64;
        let mut entries = Vec::with_capacity(cells);
        for i in 0..cells {
            let a = lo + i as f64 * width;
            let b = lo + (i + 1) as f64 * width;
            // Midpoint rule is ample for smooth densities at this resolution.
            let mass = self.pdf(0.5 * (a + b)) * width;
            entries.push((Bucket::new_unchecked(a, b), mass.max(1e-300)));
        }
        Histogram1D::from_entries(entries)
    }
}

/// A Gaussian (normal) distribution fitted by maximum likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianDist {
    /// Mean.
    pub mu: f64,
    /// Standard deviation.
    pub sigma: f64,
}

impl GaussianDist {
    /// MLE fit: sample mean and (population) standard deviation.
    pub fn fit(samples: &[f64]) -> Result<Self, HistError> {
        let (mean, var) = mean_variance(samples)?;
        Ok(GaussianDist {
            mu: mean,
            sigma: var.sqrt().max(1e-6),
        })
    }
}

impl StandardFit for GaussianDist {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn mean(&self) -> f64 {
        self.mu
    }
}

/// An exponential distribution fitted by maximum likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExponentialDist {
    /// Rate parameter λ.
    pub rate: f64,
}

impl ExponentialDist {
    /// MLE fit: `λ = 1 / mean`.
    pub fn fit(samples: &[f64]) -> Result<Self, HistError> {
        let (mean, _) = mean_variance(samples)?;
        if mean <= 0.0 {
            return Err(HistError::InvalidValue(mean));
        }
        Ok(ExponentialDist { rate: 1.0 / mean })
    }
}

impl StandardFit for ExponentialDist {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// A Gamma distribution fitted by maximum likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GammaDist {
    /// Shape parameter k.
    pub shape: f64,
    /// Rate parameter θ⁻¹ (so the mean is `shape / rate`).
    pub rate: f64,
}

impl GammaDist {
    /// MLE fit via the standard Newton iteration on the shape parameter
    /// (using `ln(mean) − mean(ln x)`), falling back to method-of-moments when
    /// the data is degenerate.
    pub fn fit(samples: &[f64]) -> Result<Self, HistError> {
        let (mean, var) = mean_variance(samples)?;
        if mean <= 0.0 {
            return Err(HistError::InvalidValue(mean));
        }
        let positive: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.0).collect();
        if positive.len() < 2 || var <= 1e-12 {
            // Degenerate data: use an (arbitrary large-shape) concentrated fit.
            let shape = 1e4;
            return Ok(GammaDist {
                shape,
                rate: shape / mean,
            });
        }
        let log_mean = positive.iter().map(|x| x.ln()).sum::<f64>() / positive.len() as f64;
        let s = mean.ln() - log_mean;
        // Initial estimate (Minka 2002), then a few Newton steps.
        let mut shape = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
        if !shape.is_finite() || shape <= 0.0 {
            shape = mean * mean / var;
        }
        for _ in 0..20 {
            let num = shape.ln() - digamma(shape) - s;
            let den = 1.0 / shape - trigamma(shape);
            let next = shape - num / den;
            if !next.is_finite() || next <= 0.0 {
                break;
            }
            if (next - shape).abs() < 1e-10 {
                shape = next;
                break;
            }
            shape = next;
        }
        Ok(GammaDist {
            shape,
            rate: shape / mean,
        })
    }
}

impl StandardFit for GammaDist {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let k = self.shape;
        let lambda = self.rate;
        (k * lambda.ln() + (k - 1.0) * x.ln() - lambda * x - ln_gamma(k)).exp()
    }

    fn mean(&self) -> f64 {
        self.shape / self.rate
    }
}

fn mean_variance(samples: &[f64]) -> Result<(f64, f64), HistError> {
    if samples.is_empty() {
        return Err(HistError::EmptyInput);
    }
    for &s in samples {
        if !s.is_finite() {
            return Err(HistError::InvalidValue(s));
        }
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    Ok((mean, var))
}

/// Lanczos approximation of `ln Γ(x)`.
fn ln_gamma(x: f64) -> f64 {
    // Coefficients for g = 7, n = 9, quoted verbatim from the standard
    // Lanczos tabulation (beyond f64 precision on purpose).
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.99999999999980993,
        676.5203681218851,
        -1259.1392167224028,
        771.32342877765313,
        -176.61502916214059,
        12.507343278686905,
        -0.13857109526572012,
        9.9843695780195716e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Digamma function ψ(x) via asymptotic expansion with recurrence.
fn digamma(mut x: f64) -> f64 {
    let mut result = 0.0;
    while x < 6.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln() - 0.5 * inv - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 / 252.0))
}

/// Trigamma function ψ′(x) via asymptotic expansion with recurrence.
fn trigamma(mut x: f64) -> f64 {
    let mut result = 0.0;
    while x < 6.0 {
        result += 1.0 / (x * x);
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + inv * (1.0 + 0.5 * inv + inv2 * (1.0 / 6.0 - inv2 * (1.0 / 30.0 - inv2 / 42.0)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ln_gamma_matches_known_values() {
        assert!((ln_gamma(1.0) - 0.0).abs() < 1e-9);
        assert!((ln_gamma(2.0) - 0.0).abs() < 1e-9);
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-9);
        assert!((ln_gamma(0.5) - (std::f64::consts::PI.sqrt()).ln()).abs() < 1e-9);
    }

    #[test]
    fn digamma_matches_known_values() {
        // ψ(1) = -γ (Euler–Mascheroni).
        assert!((digamma(1.0) + 0.5772156649015329).abs() < 1e-8);
        // ψ(2) = 1 - γ.
        assert!((digamma(2.0) - (1.0 - 0.5772156649015329)).abs() < 1e-8);
    }

    #[test]
    fn gaussian_fit_recovers_parameters() {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..20000)
            .map(|_| {
                // Box–Muller.
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen();
                100.0 + 15.0 * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let fit = GaussianDist::fit(&samples).unwrap();
        assert!((fit.mu - 100.0).abs() < 1.0, "mu = {}", fit.mu);
        assert!((fit.sigma - 15.0).abs() < 1.0, "sigma = {}", fit.sigma);
        assert!((fit.mean() - fit.mu).abs() < 1e-12);
    }

    #[test]
    fn exponential_fit_recovers_rate() {
        let mut rng = StdRng::seed_from_u64(7);
        let rate = 0.05;
        let samples: Vec<f64> = (0..20000)
            .map(|_| {
                let u: f64 = rng.gen_range(1e-12..1.0);
                -u.ln() / rate
            })
            .collect();
        let fit = ExponentialDist::fit(&samples).unwrap();
        assert!((fit.rate - rate).abs() < 0.005, "rate = {}", fit.rate);
    }

    #[test]
    fn gamma_fit_recovers_moments() {
        // Sum of k exponentials is Gamma(k, rate).
        let mut rng = StdRng::seed_from_u64(11);
        let k = 4usize;
        let rate = 0.1;
        let samples: Vec<f64> = (0..10000)
            .map(|_| {
                (0..k)
                    .map(|_| {
                        let u: f64 = rng.gen_range(1e-12..1.0);
                        -u.ln() / rate
                    })
                    .sum()
            })
            .collect();
        let fit = GammaDist::fit(&samples).unwrap();
        assert!((fit.shape - k as f64).abs() < 0.5, "shape = {}", fit.shape);
        assert!(
            (fit.mean() - k as f64 / rate).abs() < 2.0,
            "mean = {}",
            fit.mean()
        );
    }

    #[test]
    fn pdfs_are_non_negative_and_integrate_to_roughly_one() {
        let g = GaussianDist {
            mu: 50.0,
            sigma: 10.0,
        };
        let e = ExponentialDist { rate: 0.02 };
        let gamma = GammaDist {
            shape: 3.0,
            rate: 0.05,
        };
        for dist in [&g as &dyn StandardFit, &e, &gamma] {
            let mut integral = 0.0;
            let mut x = 0.0;
            while x < 500.0 {
                let p = dist.pdf(x);
                assert!(p >= 0.0);
                integral += p * 0.5;
                x += 0.5;
            }
            assert!((integral - 1.0).abs() < 0.05, "integral = {integral}");
        }
    }

    #[test]
    fn to_histogram_is_normalised() {
        let g = GaussianDist {
            mu: 100.0,
            sigma: 5.0,
        };
        let h = g.to_histogram(70.0, 130.0, 60).unwrap();
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((h.mean() - 100.0).abs() < 1.0);
        assert!(g.to_histogram(70.0, 130.0, 0).is_err());
        assert!(g.to_histogram(130.0, 70.0, 10).is_err());
    }

    #[test]
    fn fits_reject_empty_input() {
        assert!(GaussianDist::fit(&[]).is_err());
        assert!(ExponentialDist::fit(&[]).is_err());
        assert!(GammaDist::fit(&[]).is_err());
    }

    #[test]
    fn bimodal_data_is_poorly_fit_by_standard_distributions() {
        // The core claim of Figure 11(a): a bimodal raw distribution is better
        // represented by the Auto histogram than by any standard fit.
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..2000)
            .map(|i| {
                if i % 2 == 0 {
                    100.0 + rng.gen_range(-5.0..5.0)
                } else {
                    200.0 + rng.gen_range(-5.0..5.0)
                }
            })
            .collect();
        let raw = crate::raw::RawDistribution::from_samples(&samples, 1.0).unwrap();
        let auto =
            crate::auto::auto_histogram(&samples, &crate::auto::AutoConfig::default()).unwrap();
        let gauss = GaussianDist::fit(&samples)
            .unwrap()
            .to_histogram(raw.min() - 5.0, raw.max() + 5.0, 200)
            .unwrap();
        let kl_auto = crate::divergence::kl_divergence_from_raw(&raw, &auto, 1.0);
        let kl_gauss = crate::divergence::kl_divergence_from_raw(&raw, &gauss, 1.0);
        assert!(
            kl_auto < kl_gauss,
            "Auto ({kl_auto}) must fit bimodal data better than Gaussian ({kl_gauss})"
        );
    }
}
