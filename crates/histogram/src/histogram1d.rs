//! One-dimensional histograms.
//!
//! A histogram approximates a raw cost distribution as a set of
//! `⟨bucket, probability⟩` pairs whose probabilities sum to one (§3.1).
//! Probability mass is uniformly distributed *within* each bucket, which is
//! the semantics the paper relies on when re-arranging overlapping buckets
//! into disjoint ones (§4.2, Figure 7).

use crate::bucket::Bucket;
use crate::error::HistError;
use crate::raw::RawDistribution;
use crate::sweep;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A one-dimensional histogram: disjoint, sorted buckets with probabilities
/// summing to one.
///
/// Internal layout: `buckets` is a flat array of `(lo, hi)` bound pairs
/// (kept as [`Bucket`]s so [`Self::buckets`] stays a free slice view),
/// `probs` the aligned per-bucket masses, and `cum` the precomputed
/// cumulative probabilities (`cum[i] = probs[0] + … + probs[i]`, summed left
/// to right exactly like the old linear scans did). Every CDF-shaped query —
/// [`Self::prob_leq`], [`Self::prob_within`], [`Self::quantile`],
/// [`Self::pdf_at`] — binary-searches these arrays instead of scanning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram1D {
    buckets: Vec<Bucket>,
    probs: Vec<f64>,
    /// Derived data, deliberately excluded from any wire format: a payload
    /// cannot carry a `cum` inconsistent with `probs`, and pre-existing
    /// serialized histograms stay decodable. If the vendored serde shim is
    /// ever swapped for the real crate, deserialization must rebuild this
    /// through [`Self::assemble`] (e.g. a `#[serde(from = ...)]` wrapper).
    #[serde(skip)]
    cum: Vec<f64>,
}

impl Histogram1D {
    /// Assembles a histogram from buckets and probabilities that are already
    /// sorted, disjoint and normalised, building the cumulative array.
    fn assemble(buckets: Vec<Bucket>, probs: Vec<f64>) -> Self {
        let mut cum = Vec::with_capacity(probs.len());
        let mut acc = 0.0f64;
        for &p in &probs {
            acc += p;
            cum.push(acc);
        }
        Histogram1D {
            buckets,
            probs,
            cum,
        }
    }

    /// Builds a histogram from disjoint sorted `(bucket, mass)` entries
    /// produced by the sweep/coarsen kernels, normalising the masses.
    /// Skips the sorting and overlap validation of [`Self::from_entries`] —
    /// callers guarantee both by construction.
    pub(crate) fn from_disjoint_entries(entries: &[(Bucket, f64)]) -> Result<Self, HistError> {
        if entries.is_empty() {
            return Err(HistError::EmptyInput);
        }
        let total: f64 = entries.iter().map(|&(_, m)| m).sum();
        if total <= 0.0 {
            return Err(HistError::InvalidProbability(total));
        }
        let buckets = entries.iter().map(|&(b, _)| b).collect();
        let probs = entries.iter().map(|&(_, m)| m / total).collect();
        Ok(Histogram1D::assemble(buckets, probs))
    }

    /// As [`Self::from_disjoint_entries`], from parallel bucket/mass slices.
    pub(crate) fn from_disjoint_parts(
        buckets: &[Bucket],
        masses: &[f64],
    ) -> Result<Self, HistError> {
        if buckets.is_empty() {
            return Err(HistError::EmptyInput);
        }
        let total: f64 = masses.iter().sum();
        if total <= 0.0 {
            return Err(HistError::InvalidProbability(total));
        }
        let probs = masses.iter().map(|&m| m / total).collect();
        Ok(Histogram1D::assemble(buckets.to_vec(), probs))
    }
    /// Restores a histogram from buckets and probabilities captured from an
    /// existing histogram (e.g. a persisted snapshot), **without**
    /// re-normalising the probabilities, so the restored histogram is
    /// bit-identical to the one that was serialized.
    ///
    /// Validates shape only (aligned non-empty slices, finite non-negative
    /// probabilities, sorted non-overlapping buckets); callers are expected to
    /// pass data that originally came out of [`Self::buckets`] /
    /// [`Self::probs`]. The cumulative array is rebuilt left to right, exactly
    /// as every other constructor does.
    pub fn from_raw_parts(buckets: Vec<Bucket>, probs: Vec<f64>) -> Result<Self, HistError> {
        if buckets.is_empty() {
            return Err(HistError::EmptyInput);
        }
        if buckets.len() != probs.len() {
            return Err(HistError::DimensionMismatch {
                expected: buckets.len(),
                actual: probs.len(),
            });
        }
        for &p in &probs {
            if !p.is_finite() || p < 0.0 {
                return Err(HistError::InvalidProbability(p));
            }
        }
        for w in buckets.windows(2) {
            // Same float-noise tolerance as `from_entries`: anything it
            // accepted at construction time must round-trip through here.
            let tolerance = 1e-9 * w[0].width().max(w[1].width()).max(1.0);
            if w[0].overlap(&w[1]) > tolerance {
                return Err(HistError::EmptyBucket {
                    lo: w[1].lo,
                    hi: w[0].hi,
                });
            }
        }
        Ok(Histogram1D::assemble(buckets, probs))
    }

    /// Creates a histogram from disjoint `(bucket, probability)` entries.
    ///
    /// Entries are sorted by bucket lower bound and probabilities are
    /// normalised to sum to one. Returns an error if the entries are empty,
    /// contain invalid probabilities, or overlap.
    pub fn from_entries(mut entries: Vec<(Bucket, f64)>) -> Result<Self, HistError> {
        if entries.is_empty() {
            return Err(HistError::EmptyInput);
        }
        for &(_, p) in &entries {
            if !p.is_finite() || p < 0.0 {
                return Err(HistError::InvalidProbability(p));
            }
        }
        entries.sort_by(|a, b| a.0.lo.partial_cmp(&b.0.lo).expect("finite bounds"));
        for w in entries.windows(2) {
            // Tolerate sub-nanometre overlaps caused by floating point noise in
            // boundary arithmetic; reject anything materially overlapping.
            let tolerance = 1e-9 * w[0].0.width().max(w[1].0.width()).max(1.0);
            if w[0].0.overlap(&w[1].0) > tolerance {
                return Err(HistError::EmptyBucket {
                    lo: w[1].0.lo,
                    hi: w[0].0.hi,
                });
            }
        }
        let total: f64 = entries.iter().map(|&(_, p)| p).sum();
        if total <= 0.0 {
            return Err(HistError::InvalidProbability(total));
        }
        let buckets = entries.iter().map(|&(b, _)| b).collect();
        let probs = entries.iter().map(|&(_, p)| p / total).collect();
        Ok(Histogram1D::assemble(buckets, probs))
    }

    /// Creates a histogram from possibly *overlapping* `(bucket, probability)`
    /// pairs by re-arranging them into disjoint buckets with adjusted
    /// probabilities — the procedure of §4.2 (Figure 7).
    ///
    /// All bucket boundaries are collected, the real line is partitioned into
    /// elementary intervals, and each original bucket contributes mass to an
    /// elementary interval in proportion to the overlap fraction (uniform
    /// within-bucket density). Zero-mass elementary intervals are dropped and
    /// adjacent intervals are *not* merged, so the resulting boundaries are
    /// exactly the union of the input boundaries, matching the paper's worked
    /// example.
    pub fn from_overlapping(entries: &[(Bucket, f64)]) -> Result<Self, HistError> {
        if entries.is_empty() {
            return Err(HistError::EmptyInput);
        }
        for &(_, p) in entries {
            if !p.is_finite() || p < 0.0 {
                return Err(HistError::InvalidProbability(p));
            }
        }
        sweep::with_local_buffers(|events, out, _| {
            events.clear();
            for &(b, p) in entries {
                sweep::push_box(events, b.lo, b.hi, p);
            }
            sweep::sweep_into(events, out);
            Histogram1D::from_disjoint_entries(out)
        })
    }

    /// A histogram that puts all mass on the interval `[value, value + width)`.
    pub fn point_mass(value: f64, width: f64) -> Result<Self, HistError> {
        let b = Bucket::new(value, value + width.max(f64::EPSILON))?;
        Histogram1D::from_entries(vec![(b, 1.0)])
    }

    /// A single-bucket histogram uniform on `[lo, hi)`.
    pub fn uniform(lo: f64, hi: f64) -> Result<Self, HistError> {
        Histogram1D::from_entries(vec![(Bucket::new(lo, hi)?, 1.0)])
    }

    /// Builds a histogram from a raw distribution and explicit bucket
    /// boundaries over the raw values.
    ///
    /// `boundaries` are indices into `raw.values()` marking the first value of
    /// each bucket; the caller typically obtains them from
    /// [`crate::voptimal::voptimal_boundaries`].
    pub fn from_raw_with_boundaries(
        raw: &RawDistribution,
        boundaries: &[usize],
    ) -> Result<Self, HistError> {
        if boundaries.is_empty() || boundaries[0] != 0 {
            return Err(HistError::ZeroBuckets);
        }
        let values = raw.values();
        let probs = raw.probs();
        let n = values.len();
        // Bucket upper bound: one resolution step past the last value assigned
        // to the bucket, clamped to the next bucket's first value so buckets
        // stay disjoint. Extending only to the last *contained* value (rather
        // than to the next bucket's start) keeps empty gaps between modes out
        // of every bucket, which matters for density-based error metrics.
        let step = bucket_step(values);
        let mut entries = Vec::with_capacity(boundaries.len());
        for (i, &start) in boundaries.iter().enumerate() {
            let end = if i + 1 < boundaries.len() {
                boundaries[i + 1]
            } else {
                n
            };
            if start >= end || end > n {
                return Err(HistError::ZeroBuckets);
            }
            let lo = values[start];
            let mut hi = values[end - 1] + step;
            if end < n {
                hi = hi.min(values[end]);
            }
            let mass: f64 = probs[start..end].iter().sum();
            entries.push((Bucket::new_unchecked(lo, hi), mass));
        }
        Histogram1D::from_entries(entries)
    }

    /// The buckets, sorted and disjoint.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Per-bucket probabilities (aligned with [`Self::buckets`]).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Smallest representable cost (lower bound of the first bucket).
    pub fn min(&self) -> f64 {
        self.buckets[0].lo
    }

    /// Largest representable cost (upper bound of the last bucket).
    pub fn max(&self) -> f64 {
        self.buckets.last().expect("non-empty").hi
    }

    /// Mean cost under the uniform-within-bucket assumption.
    pub fn mean(&self) -> f64 {
        self.buckets
            .iter()
            .zip(&self.probs)
            .map(|(b, p)| b.midpoint() * p)
            .sum()
    }

    /// Variance of the cost under the uniform-within-bucket assumption.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.buckets
            .iter()
            .zip(&self.probs)
            .map(|(b, p)| {
                let within = b.width() * b.width() / 12.0;
                let centre = b.midpoint() - mean;
                p * (within + centre * centre)
            })
            .sum()
    }

    /// Cumulative probabilities, aligned with [`Self::buckets`]:
    /// `cumulative_probs()[i] = P(cost < buckets()[i].hi)`.
    pub fn cumulative_probs(&self) -> &[f64] {
        &self.cum
    }

    /// Index of the first bucket whose upper bound exceeds `x`, i.e. the
    /// bucket containing `x` when one does.
    #[inline]
    fn bucket_index_above(&self, x: f64) -> usize {
        self.buckets.partition_point(|b| b.hi <= x)
    }

    /// Probability density at `x` (uniform within each bucket).
    pub fn pdf_at(&self, x: f64) -> f64 {
        let idx = self.bucket_index_above(x);
        match self.buckets.get(idx) {
            Some(b) if b.contains(x) => self.probs[idx] / b.width(),
            _ => 0.0,
        }
    }

    /// `P(cost ≤ x)`, by binary search over the cumulative array.
    pub fn prob_leq(&self, x: f64) -> f64 {
        let idx = self.bucket_index_above(x);
        let mut acc = if idx == 0 { 0.0 } else { self.cum[idx - 1] };
        if let Some(b) = self.buckets.get(idx) {
            if x > b.lo {
                acc += self.probs[idx] * (x - b.lo) / b.width();
            }
        }
        acc.min(1.0)
    }

    /// `P(lo ≤ cost < hi)`, as the CDF difference of the window bounds.
    pub fn prob_within(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        (self.prob_leq(hi) - self.prob_leq(lo)).max(0.0)
    }

    /// The probability mass assigned to the bucket containing `x`,
    /// rescaled to a window of width `resolution` around `x`
    /// (used by the cross-validation error of §3.1).
    pub fn prob_at_resolution(&self, x: f64, resolution: f64) -> f64 {
        self.pdf_at(x) * resolution
    }

    /// The `q`-quantile (`q` in `[0, 1]`) under uniform-within-bucket
    /// semantics, by binary search over the cumulative array.
    pub fn quantile(&self, q: f64) -> f64 {
        let q = q.clamp(0.0, 1.0);
        let idx = self.cum.partition_point(|&c| c < q);
        let Some(b) = self.buckets.get(idx) else {
            return self.max();
        };
        let p = self.probs[idx];
        if p <= 0.0 {
            return b.lo;
        }
        let acc = if idx == 0 { 0.0 } else { self.cum[idx - 1] };
        let frac = (q - acc) / p;
        b.lo + frac * b.width()
    }

    /// Draws a random cost value from the histogram.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.quantile(u)
    }

    /// Discrete Shannon entropy (natural log) over the bucket probabilities.
    pub fn entropy(&self) -> f64 {
        crate::divergence::entropy_of_probs(&self.probs)
    }

    /// Approximate storage in bytes (one `(lo, hi, prob)` triple per bucket),
    /// used for the Figure 11(c) space-saving comparison and the Figure 12
    /// memory accounting.
    pub fn storage_bytes(&self) -> usize {
        self.buckets.len() * 3 * std::mem::size_of::<f64>()
    }

    /// Shifts every bucket by a constant offset (used when composing
    /// deterministic delays with uncertain costs).
    pub fn shift(&self, offset: f64) -> Histogram1D {
        let buckets = self
            .buckets
            .iter()
            .map(|b| Bucket::new_unchecked(b.lo + offset, b.hi + offset))
            .collect();
        // Shifting changes no probability, so the cumulative array carries over.
        Histogram1D {
            buckets,
            probs: self.probs.clone(),
            cum: self.cum.clone(),
        }
    }

    /// Coarsens the histogram to at most `max_buckets` buckets by greedily
    /// merging adjacent buckets with the smallest combined probability
    /// (heap-based, `O(n log n)`; same merge sequence as the naive rescan).
    ///
    /// Convolving many histograms multiplies bucket counts; the legacy
    /// baseline uses this to keep intermediate results bounded.
    pub fn coarsen(&self, max_buckets: usize) -> Histogram1D {
        let max_buckets = max_buckets.max(1);
        if self.buckets.len() <= max_buckets {
            return self.clone();
        }
        sweep::with_local_buffers(|_, entries, coarsen| {
            entries.clear();
            entries.extend(self.buckets.iter().copied().zip(self.probs.iter().copied()));
            sweep::coarsen_entries_in_place(entries, max_buckets, coarsen);
            let buckets = entries.iter().map(|&(b, _)| b).collect();
            let probs = entries.iter().map(|&(_, p)| p).collect();
            Histogram1D::assemble(buckets, probs)
        })
    }
}

/// A sensible bucket step for the final bucket of a raw distribution: the
/// median gap between consecutive distinct values, or 1.0 when there is only
/// one value.
fn bucket_step(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 1.0;
    }
    let mut gaps: Vec<f64> = values.windows(2).map(|w| w[1] - w[0]).collect();
    gaps.sort_by(|a, b| a.partial_cmp(b).expect("finite gaps"));
    gaps[gaps.len() / 2].max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn b(lo: f64, hi: f64) -> Bucket {
        Bucket::new(lo, hi).unwrap()
    }

    #[test]
    fn from_entries_normalises_and_sorts() {
        let h = Histogram1D::from_entries(vec![(b(10.0, 20.0), 2.0), (b(0.0, 10.0), 2.0)]).unwrap();
        assert_eq!(h.bucket_count(), 2);
        assert_eq!(h.buckets()[0].lo, 0.0);
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((h.probs()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_entries_rejects_overlap_and_empty() {
        assert!(Histogram1D::from_entries(vec![]).is_err());
        assert!(Histogram1D::from_entries(vec![(b(0.0, 10.0), 0.5), (b(5.0, 15.0), 0.5)]).is_err());
        assert!(Histogram1D::from_entries(vec![(b(0.0, 1.0), -0.5)]).is_err());
    }

    #[test]
    fn rearrangement_matches_paper_figure7() {
        // The second table of Figure 7: overlapping buckets
        // [40,70):0.30, [50,90):0.25, [60,90):0.20, [70,110):0.25
        // The final cost distribution (third table) is
        // [40,50):0.1000 [50,60):0.1625 [60,70):0.2292 [70,90):0.3833 [90,110):0.1250
        let h = Histogram1D::from_overlapping(&[
            (b(40.0, 70.0), 0.30),
            (b(50.0, 90.0), 0.25),
            (b(60.0, 90.0), 0.20),
            (b(70.0, 110.0), 0.25),
        ])
        .unwrap();
        let expect = [
            (40.0, 50.0, 0.1),
            (50.0, 60.0, 0.1625),
            (60.0, 70.0, 0.229166666),
            (70.0, 90.0, 0.383333333),
            (90.0, 110.0, 0.125),
        ];
        assert_eq!(h.bucket_count(), expect.len());
        for (i, &(lo, hi, p)) in expect.iter().enumerate() {
            assert!((h.buckets()[i].lo - lo).abs() < 1e-9, "bucket {i} lo");
            assert!((h.buckets()[i].hi - hi).abs() < 1e-9, "bucket {i} hi");
            assert!(
                (h.probs()[i] - p).abs() < 1e-6,
                "bucket {i} prob {}",
                h.probs()[i]
            );
        }
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prob_leq_and_within() {
        let h = Histogram1D::from_entries(vec![(b(0.0, 10.0), 0.5), (b(10.0, 30.0), 0.5)]).unwrap();
        assert!((h.prob_leq(10.0) - 0.5).abs() < 1e-12);
        assert!((h.prob_leq(5.0) - 0.25).abs() < 1e-12);
        assert!((h.prob_leq(20.0) - 0.75).abs() < 1e-12);
        assert_eq!(h.prob_leq(-1.0), 0.0);
        assert!((h.prob_leq(100.0) - 1.0).abs() < 1e-12);
        assert!((h.prob_within(5.0, 15.0) - 0.375).abs() < 1e-12);
        assert_eq!(h.prob_within(10.0, 10.0), 0.0);
    }

    #[test]
    fn mean_variance_quantile() {
        let h = Histogram1D::uniform(0.0, 10.0).unwrap();
        assert!((h.mean() - 5.0).abs() < 1e-12);
        assert!((h.variance() - 100.0 / 12.0).abs() < 1e-9);
        assert!((h.quantile(0.5) - 5.0).abs() < 1e-12);
        assert!((h.quantile(0.0) - 0.0).abs() < 1e-12);
        assert!((h.quantile(1.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_and_resolution_probability() {
        let h = Histogram1D::from_entries(vec![(b(0.0, 10.0), 0.8), (b(10.0, 20.0), 0.2)]).unwrap();
        assert!((h.pdf_at(5.0) - 0.08).abs() < 1e-12);
        assert!((h.pdf_at(15.0) - 0.02).abs() < 1e-12);
        assert_eq!(h.pdf_at(25.0), 0.0);
        assert!((h.prob_at_resolution(5.0, 1.0) - 0.08).abs() < 1e-12);
    }

    #[test]
    fn sampling_stays_in_support_and_tracks_mean() {
        let h =
            Histogram1D::from_entries(vec![(b(10.0, 20.0), 0.3), (b(40.0, 60.0), 0.7)]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        let n = 5000;
        for _ in 0..n {
            let x = h.sample(&mut rng);
            assert!((10.0..60.0).contains(&x));
            sum += x;
        }
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - h.mean()).abs() < 1.0,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    fn from_raw_with_boundaries_buckets_mass() {
        let raw = RawDistribution::from_samples(&[10.0, 11.0, 12.0, 30.0, 31.0], 1.0).unwrap();
        let h = Histogram1D::from_raw_with_boundaries(&raw, &[0, 3]).unwrap();
        assert_eq!(h.bucket_count(), 2);
        assert!((h.probs()[0] - 0.6).abs() < 1e-12);
        assert!((h.probs()[1] - 0.4).abs() < 1e-12);
        assert!(h.buckets()[0].contains(12.0));
        assert!(h.buckets()[1].contains(31.0));
        // Invalid boundaries rejected.
        assert!(Histogram1D::from_raw_with_boundaries(&raw, &[]).is_err());
        assert!(Histogram1D::from_raw_with_boundaries(&raw, &[1, 3]).is_err());
        assert!(Histogram1D::from_raw_with_boundaries(&raw, &[0, 9]).is_err());
    }

    #[test]
    fn point_mass_and_shift() {
        let h = Histogram1D::point_mass(60.0, 1.0).unwrap();
        assert!((h.mean() - 60.5).abs() < 1e-9);
        let shifted = h.shift(10.0);
        assert!((shifted.mean() - 70.5).abs() < 1e-9);
        assert!((shifted.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coarsen_reduces_buckets_and_preserves_mass() {
        let h = Histogram1D::from_entries(vec![
            (b(0.0, 1.0), 0.1),
            (b(1.0, 2.0), 0.1),
            (b(2.0, 3.0), 0.3),
            (b(3.0, 4.0), 0.3),
            (b(4.0, 5.0), 0.2),
        ])
        .unwrap();
        let c = h.coarsen(3);
        assert_eq!(c.bucket_count(), 3);
        assert!((c.probs().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(c.min(), 0.0);
        assert_eq!(c.max(), 5.0);
        // Mean should be approximately preserved by merging.
        assert!((c.mean() - h.mean()).abs() < 0.6);
        // No-op when already small enough.
        assert_eq!(h.coarsen(10), h);
    }

    #[test]
    fn from_raw_parts_round_trips_bit_identically() {
        // Probabilities that do NOT sum to one survive unchanged — the whole
        // point of the raw restore path: 0.1 + 0.2 ≠ 0.3 in binary, so a
        // normalising constructor would perturb the bits.
        let h = Histogram1D::from_entries(vec![
            (b(0.0, 10.0), 0.1),
            (b(10.0, 20.0), 0.2),
            (b(20.0, 40.0), 0.7),
        ])
        .unwrap();
        let back = Histogram1D::from_raw_parts(h.buckets().to_vec(), h.probs().to_vec()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.cumulative_probs(), h.cumulative_probs());
        // Shape violations are rejected.
        assert!(Histogram1D::from_raw_parts(vec![], vec![]).is_err());
        assert!(Histogram1D::from_raw_parts(vec![b(0.0, 1.0)], vec![0.5, 0.5]).is_err());
        assert!(Histogram1D::from_raw_parts(vec![b(0.0, 1.0)], vec![f64::NAN]).is_err());
        assert!(
            Histogram1D::from_raw_parts(vec![b(0.0, 10.0), b(5.0, 15.0)], vec![0.5, 0.5]).is_err()
        );
    }

    #[test]
    fn entropy_reflects_spread() {
        let concentrated = Histogram1D::from_entries(vec![(b(0.0, 1.0), 1.0)]).unwrap();
        let spread = Histogram1D::from_entries(vec![
            (b(0.0, 1.0), 0.25),
            (b(1.0, 2.0), 0.25),
            (b(2.0, 3.0), 0.25),
            (b(3.0, 4.0), 0.25),
        ])
        .unwrap();
        assert!(concentrated.entropy() < spread.entropy());
        assert!((spread.entropy() - (4.0f64).ln()).abs() < 1e-9);
    }
}
