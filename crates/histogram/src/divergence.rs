//! Kullback–Leibler divergence and entropy.
//!
//! The paper uses KL divergence both to motivate the hybrid graph (Figure 4:
//! convolution under independence diverges from the ground truth) and to
//! evaluate estimators (Figures 11, 14). Entropy appears through Theorem 2
//! (`KL(p, p̂_DE) = H_DE − H`) and the Figure 8(b)/15 analyses.
//!
//! Histograms are continuous objects; to compare two of them (or a histogram
//! against a raw empirical distribution) we discretise both on the union of
//! their bucket boundaries and compute the discrete KL divergence over that
//! common refinement. A small smoothing mass avoids infinite divergences when
//! the approximating distribution assigns zero probability to a region the
//! reference covers.

use crate::histogram1d::Histogram1D;
use crate::raw::RawDistribution;

/// Smoothing probability assigned to empty cells of the approximating
/// distribution when computing KL divergence.
const SMOOTHING: f64 = 1e-9;

/// Shannon entropy (natural logarithm) of a probability vector.
///
/// Zero entries contribute nothing; the vector is assumed to be normalised.
pub fn entropy_of_probs(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Discrete KL divergence `KL(p ‖ q) = Σ p_i ln(p_i / q_i)` over aligned
/// probability vectors. `q` entries are smoothed to avoid division by zero.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len(), "probability vectors must align");
    let q_total: f64 = q.iter().sum::<f64>() + SMOOTHING * q.len() as f64;
    let p_total: f64 = p.iter().sum();
    if p_total <= 0.0 || q_total <= 0.0 {
        return 0.0;
    }
    p.iter()
        .zip(q)
        .filter(|(&pi, _)| pi > 0.0)
        .map(|(&pi, &qi)| {
            let pn = pi / p_total;
            let qn = (qi + SMOOTHING) / q_total;
            pn * (pn / qn).ln()
        })
        .sum::<f64>()
        .max(0.0)
}

/// KL divergence `KL(reference ‖ approx)` between two histograms, computed on
/// the common refinement of their bucket boundaries.
pub fn kl_divergence_histograms(reference: &Histogram1D, approx: &Histogram1D) -> f64 {
    let cuts = common_cuts(
        reference.buckets().iter().flat_map(|b| [b.lo, b.hi]),
        approx.buckets().iter().flat_map(|b| [b.lo, b.hi]),
    );
    let (p, q) = discretise_pair(reference, approx, &cuts);
    kl_divergence(&p, &q)
}

/// KL divergence `KL(raw ‖ approx)` of a histogram (or fitted distribution
/// discretised into a histogram) from a raw empirical distribution.
///
/// The raw distribution's probability of each distinct value is compared with
/// the probability the histogram assigns to a `resolution`-wide window at that
/// value. This matches how the paper compares fitted models against the raw
/// travel-time data (Figures 1(b) and 11(a)).
pub fn kl_divergence_from_raw(raw: &RawDistribution, approx: &Histogram1D, resolution: f64) -> f64 {
    let p: Vec<f64> = raw.probs().to_vec();
    let q: Vec<f64> = raw
        .values()
        .iter()
        .map(|&v| approx.prob_at_resolution(v, resolution))
        .collect();
    kl_divergence(&p, &q)
}

/// Entropy of a histogram discretised at `resolution`-wide cells spanning its
/// support. Coarser histograms (wider buckets) have larger discretised entropy
/// than sharply concentrated ones.
pub fn entropy_at_resolution(hist: &Histogram1D, resolution: f64) -> f64 {
    let resolution = if resolution > 0.0 { resolution } else { 1.0 };
    let mut probs = Vec::new();
    let mut x = hist.min();
    let max = hist.max();
    while x < max {
        probs.push(hist.prob_within(x, x + resolution));
        x += resolution;
    }
    entropy_of_probs(&probs)
}

fn common_cuts(a: impl Iterator<Item = f64>, b: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut cuts: Vec<f64> = a.chain(b).collect();
    cuts.sort_by(|x, y| x.partial_cmp(y).expect("finite bounds"));
    cuts.dedup_by(|x, y| (*x - *y).abs() < 1e-12);
    cuts
}

fn discretise_pair(a: &Histogram1D, b: &Histogram1D, cuts: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let mut p = Vec::with_capacity(cuts.len());
    let mut q = Vec::with_capacity(cuts.len());
    for w in cuts.windows(2) {
        p.push(a.prob_within(w[0], w[1]));
        q.push(b.prob_within(w[0], w[1]));
    }
    (p, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket::Bucket;

    fn b(lo: f64, hi: f64) -> Bucket {
        Bucket::new(lo, hi).unwrap()
    }

    #[test]
    fn entropy_of_uniform_probs() {
        let probs = vec![0.25; 4];
        assert!((entropy_of_probs(&probs) - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(entropy_of_probs(&[1.0]), 0.0);
        assert_eq!(entropy_of_probs(&[0.0, 1.0, 0.0]), 0.0);
    }

    #[test]
    fn kl_is_zero_for_identical_distributions() {
        let p = vec![0.2, 0.3, 0.5];
        assert!(kl_divergence(&p, &p) < 1e-9);
        let h = Histogram1D::from_entries(vec![(b(0.0, 10.0), 0.4), (b(10.0, 20.0), 0.6)]).unwrap();
        assert!(kl_divergence_histograms(&h, &h) < 1e-9);
    }

    #[test]
    fn kl_is_positive_for_different_distributions() {
        let p = vec![0.9, 0.1];
        let q = vec![0.1, 0.9];
        assert!(kl_divergence(&p, &q) > 0.5);
        let h1 = Histogram1D::uniform(0.0, 10.0).unwrap();
        let h2 = Histogram1D::uniform(5.0, 15.0).unwrap();
        assert!(kl_divergence_histograms(&h1, &h2) > 0.1);
    }

    #[test]
    fn kl_is_asymmetric_in_general() {
        let p = vec![0.8, 0.15, 0.05];
        let q = vec![0.4, 0.4, 0.2];
        let forward = kl_divergence(&p, &q);
        let backward = kl_divergence(&q, &p);
        assert!((forward - backward).abs() > 1e-3);
    }

    #[test]
    fn kl_handles_zero_mass_in_approximation() {
        let p = vec![0.5, 0.5];
        let q = vec![1.0, 0.0];
        let d = kl_divergence(&p, &q);
        assert!(d.is_finite());
        assert!(d > 1.0, "missing support should be heavily penalised: {d}");
    }

    #[test]
    fn kl_from_raw_prefers_closer_histogram() {
        let raw = RawDistribution::from_samples(
            &[100.0, 100.0, 101.0, 102.0, 130.0, 131.0, 131.0, 132.0],
            1.0,
        )
        .unwrap();
        let good = crate::voptimal::voptimal_histogram(&raw, 4).unwrap();
        let bad = Histogram1D::uniform(90.0, 140.0).unwrap();
        let kl_good = kl_divergence_from_raw(&raw, &good, 1.0);
        let kl_bad = kl_divergence_from_raw(&raw, &bad, 1.0);
        assert!(
            kl_good < kl_bad,
            "V-Optimal fit ({kl_good}) should beat a flat histogram ({kl_bad})"
        );
    }

    #[test]
    fn entropy_at_resolution_larger_for_wider_distributions() {
        let narrow = Histogram1D::uniform(100.0, 105.0).unwrap();
        let wide = Histogram1D::uniform(100.0, 200.0).unwrap();
        assert!(entropy_at_resolution(&wide, 1.0) > entropy_at_resolution(&narrow, 1.0));
    }

    #[test]
    fn histogram_kl_decreases_as_approximation_improves() {
        let reference = Histogram1D::from_entries(vec![
            (b(0.0, 10.0), 0.1),
            (b(10.0, 20.0), 0.6),
            (b(20.0, 30.0), 0.3),
        ])
        .unwrap();
        let rough = Histogram1D::uniform(0.0, 30.0).unwrap();
        let better =
            Histogram1D::from_entries(vec![(b(0.0, 15.0), 0.4), (b(15.0, 30.0), 0.6)]).unwrap();
        let kl_rough = kl_divergence_histograms(&reference, &rough);
        let kl_better = kl_divergence_histograms(&reference, &better);
        assert!(kl_better < kl_rough);
    }
}
