//! Convolution of independent cost histograms.
//!
//! The legacy graph model (§2.3) estimates a path's cost distribution as the
//! convolution `⊙` of its edges' cost distributions under an independence
//! assumption. This module provides that operation for [`Histogram1D`]s:
//! every pair of buckets produces a summed bucket whose probability is the
//! product of the bucket probabilities, and the resulting overlapping buckets
//! are re-arranged into a disjoint histogram.

use crate::bucket::Bucket;
use crate::error::HistError;
use crate::histogram1d::Histogram1D;

/// Default cap on the number of buckets of intermediate convolution results.
///
/// Without a cap the bucket count grows multiplicatively with the number of
/// convolved histograms.
pub const DEFAULT_MAX_BUCKETS: usize = 64;

/// Convolves two independent cost histograms.
pub fn convolve(a: &Histogram1D, b: &Histogram1D) -> Result<Histogram1D, HistError> {
    convolve_with_limit(a, b, DEFAULT_MAX_BUCKETS)
}

/// Convolves two independent cost histograms, coarsening the result to at most
/// `max_buckets` buckets.
pub fn convolve_with_limit(
    a: &Histogram1D,
    b: &Histogram1D,
    max_buckets: usize,
) -> Result<Histogram1D, HistError> {
    let mut entries: Vec<(Bucket, f64)> = Vec::with_capacity(a.bucket_count() * b.bucket_count());
    for (ba, pa) in a.buckets().iter().zip(a.probs()) {
        for (bb, pb) in b.buckets().iter().zip(b.probs()) {
            let mass = pa * pb;
            if mass > 0.0 {
                entries.push((ba.sum(bb), mass));
            }
        }
    }
    let hist = Histogram1D::from_overlapping(&entries)?;
    Ok(hist.coarsen(max_buckets))
}

/// Convolves a sequence of independent cost histograms (left to right).
///
/// Returns an error when the slice is empty.
pub fn convolve_many(histograms: &[Histogram1D]) -> Result<Histogram1D, HistError> {
    convolve_many_with_limit(histograms, DEFAULT_MAX_BUCKETS)
}

/// Convolves a sequence of histograms, coarsening intermediates to
/// `max_buckets` buckets.
pub fn convolve_many_with_limit(
    histograms: &[Histogram1D],
    max_buckets: usize,
) -> Result<Histogram1D, HistError> {
    let mut iter = histograms.iter();
    let first = iter.next().ok_or(HistError::EmptyInput)?;
    let mut acc = first.clone();
    for h in iter {
        acc = convolve_with_limit(&acc, h, max_buckets)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: f64, hi: f64) -> Bucket {
        Bucket::new(lo, hi).unwrap()
    }

    #[test]
    fn convolution_mass_sums_to_one() {
        let a =
            Histogram1D::from_entries(vec![(b(10.0, 20.0), 0.5), (b(20.0, 40.0), 0.5)]).unwrap();
        let c =
            Histogram1D::from_entries(vec![(b(5.0, 15.0), 0.25), (b(15.0, 25.0), 0.75)]).unwrap();
        let conv = convolve(&a, &c).unwrap();
        assert!((conv.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_mean_is_additive() {
        let a =
            Histogram1D::from_entries(vec![(b(10.0, 20.0), 0.3), (b(20.0, 40.0), 0.7)]).unwrap();
        let c = Histogram1D::from_entries(vec![(b(0.0, 10.0), 0.6), (b(10.0, 30.0), 0.4)]).unwrap();
        let conv = convolve(&a, &c).unwrap();
        assert!(
            (conv.mean() - (a.mean() + c.mean())).abs() < 1e-6,
            "mean of sum must equal sum of means: {} vs {}",
            conv.mean(),
            a.mean() + c.mean()
        );
    }

    #[test]
    fn convolution_support_is_minkowski_sum() {
        let a = Histogram1D::uniform(10.0, 20.0).unwrap();
        let c = Histogram1D::uniform(5.0, 8.0).unwrap();
        let conv = convolve(&a, &c).unwrap();
        assert!((conv.min() - 15.0).abs() < 1e-9);
        assert!((conv.max() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn convolving_point_masses_adds_values() {
        let a = Histogram1D::point_mass(30.0, 1.0).unwrap();
        let c = Histogram1D::point_mass(12.0, 1.0).unwrap();
        let conv = convolve(&a, &c).unwrap();
        assert!(conv.buckets()[0].contains(42.5));
        assert!((conv.probs()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolve_many_matches_pairwise() {
        let a = Histogram1D::uniform(0.0, 10.0).unwrap();
        let c = Histogram1D::uniform(5.0, 10.0).unwrap();
        let d = Histogram1D::uniform(1.0, 2.0).unwrap();
        let step = convolve(&convolve(&a, &c).unwrap(), &d).unwrap();
        let many = convolve_many(&[a, c, d]).unwrap();
        assert!((step.mean() - many.mean()).abs() < 1e-6);
        assert!((step.min() - many.min()).abs() < 1e-9);
        assert!((step.max() - many.max()).abs() < 1e-9);
    }

    #[test]
    fn convolve_many_rejects_empty() {
        assert!(convolve_many(&[]).is_err());
    }

    #[test]
    fn limit_caps_bucket_count() {
        let hs: Vec<Histogram1D> = (0..8)
            .map(|i| {
                Histogram1D::from_entries(vec![
                    (b(10.0 + i as f64, 20.0 + i as f64), 0.4),
                    (b(30.0 + i as f64, 50.0 + i as f64), 0.6),
                ])
                .unwrap()
            })
            .collect();
        let conv = convolve_many_with_limit(&hs, 16).unwrap();
        assert!(conv.bucket_count() <= 16);
        assert!((conv.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
