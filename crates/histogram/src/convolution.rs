//! Convolution of independent cost histograms.
//!
//! The legacy graph model (§2.3) estimates a path's cost distribution as the
//! convolution `⊙` of its edges' cost distributions under an independence
//! assumption. Each pair of buckets contributes a summed bucket whose mass is
//! the product of the bucket probabilities; because both inputs are already
//! sorted and disjoint, the overlapping products are flattened by the
//! sweep-line kernel of the crate-private `sweep` module (two density events per product,
//! one sort, one pass) and coarsened in place — no `O(Bₐ·B_b)` entry vector,
//! no quadratic rearrangement, no re-allocating coarsen.
//!
//! All buffers live in a [`ConvolveScratch`]; the scratch-free entry points
//! reuse a thread-local one, so steady-state convolution allocates only the
//! final [`Histogram1D`]. Callers convolving in a loop (incremental routing,
//! the batch executor's prefix sharing) can thread their own scratch through
//! the `*_with_scratch` variants.

use crate::bucket::Bucket;
use crate::error::HistError;
use crate::histogram1d::Histogram1D;
use crate::sweep::{self, CoarsenScratch};
use std::cell::RefCell;

/// Default cap on the number of buckets of intermediate convolution results.
///
/// Without a cap the bucket count grows multiplicatively with the number of
/// convolved histograms.
pub const DEFAULT_MAX_BUCKETS: usize = 64;

/// Reusable buffers for the convolution kernel: density events, disjoint
/// output entries, coarsening state and the fold accumulator of
/// [`convolve_many_with_scratch`].
#[derive(Debug, Default)]
pub struct ConvolveScratch {
    events: Vec<(f64, f64)>,
    entries: Vec<(Bucket, f64)>,
    acc_buckets: Vec<Bucket>,
    acc_probs: Vec<f64>,
    coarsen: CoarsenScratch,
}

impl ConvolveScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        ConvolveScratch::default()
    }
}

thread_local! {
    static THREAD_SCRATCH: RefCell<ConvolveScratch> = RefCell::new(ConvolveScratch::new());
}

fn with_thread_scratch<R>(f: impl FnOnce(&mut ConvolveScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

/// If the histogram slice is a point mass — a single bucket of negligible
/// width — the location (lower bound) and mass of that bucket.
fn point_mass_of(buckets: &[Bucket], probs: &[f64]) -> Option<(f64, f64)> {
    match buckets {
        [b] if b.width() <= (b.lo.abs() + b.hi.abs()).max(1.0) * 1e-14 => Some((b.lo, probs[0])),
        _ => None,
    }
}

/// The sweep-line convolution kernel over raw `(buckets, masses)` operand
/// slices. Writes the disjoint, coarsened, unnormalised result into `entries`.
fn convolve_core(
    a: (&[Bucket], &[f64]),
    b: (&[Bucket], &[f64]),
    max_buckets: usize,
    events: &mut Vec<(f64, f64)>,
    entries: &mut Vec<(Bucket, f64)>,
    coarsen: &mut CoarsenScratch,
) -> Result<(), HistError> {
    let (a_buckets, a_probs) = a;
    let (b_buckets, b_probs) = b;
    if a_buckets.is_empty() || b_buckets.is_empty() {
        return Err(HistError::EmptyInput);
    }
    // Point-mass fast path: convolving with a degenerate bucket is a pure
    // shift — no bucket product, no sweep.
    let shifted = match point_mass_of(b_buckets, b_probs) {
        Some((offset, mass)) => Some((a_buckets, a_probs, offset, mass)),
        None => point_mass_of(a_buckets, a_probs)
            .map(|(offset, mass)| (b_buckets, b_probs, offset, mass)),
    };
    if let Some((buckets, probs, offset, mass)) = shifted {
        entries.clear();
        entries.extend(buckets.iter().zip(probs).map(|(b, &p)| {
            (
                Bucket::new_unchecked(b.lo + offset, b.hi + offset),
                p * mass,
            )
        }));
        sweep::coarsen_entries_in_place(entries, max_buckets, coarsen);
        return Ok(());
    }
    events.clear();
    for (ba, &pa) in a_buckets.iter().zip(a_probs) {
        for (bb, &pb) in b_buckets.iter().zip(b_probs) {
            sweep::push_box(events, ba.lo + bb.lo, ba.hi + bb.hi, pa * pb);
        }
    }
    sweep::sweep_into(events, entries);
    if entries.is_empty() {
        return Err(HistError::EmptyInput);
    }
    sweep::coarsen_entries_in_place(entries, max_buckets, coarsen);
    Ok(())
}

/// Convolves two independent cost histograms.
pub fn convolve(a: &Histogram1D, b: &Histogram1D) -> Result<Histogram1D, HistError> {
    convolve_with_limit(a, b, DEFAULT_MAX_BUCKETS)
}

/// Convolves two independent cost histograms, coarsening the result to at most
/// `max_buckets` buckets. Uses this thread's scratch buffers.
pub fn convolve_with_limit(
    a: &Histogram1D,
    b: &Histogram1D,
    max_buckets: usize,
) -> Result<Histogram1D, HistError> {
    with_thread_scratch(|scratch| convolve_with_scratch(a, b, max_buckets, scratch))
}

/// As [`convolve_with_limit`], with caller-provided scratch buffers.
pub fn convolve_with_scratch(
    a: &Histogram1D,
    b: &Histogram1D,
    max_buckets: usize,
    scratch: &mut ConvolveScratch,
) -> Result<Histogram1D, HistError> {
    let ConvolveScratch {
        events,
        entries,
        coarsen,
        ..
    } = scratch;
    convolve_core(
        (a.buckets(), a.probs()),
        (b.buckets(), b.probs()),
        max_buckets,
        events,
        entries,
        coarsen,
    )?;
    Histogram1D::from_disjoint_entries(entries)
}

/// Convolves a sequence of independent cost histograms (left to right).
///
/// Returns an error when the slice is empty.
pub fn convolve_many(histograms: &[Histogram1D]) -> Result<Histogram1D, HistError> {
    convolve_many_with_limit(histograms, DEFAULT_MAX_BUCKETS)
}

/// Convolves a sequence of histograms, coarsening intermediates to
/// `max_buckets` buckets. Uses this thread's scratch buffers.
pub fn convolve_many_with_limit(
    histograms: &[Histogram1D],
    max_buckets: usize,
) -> Result<Histogram1D, HistError> {
    with_thread_scratch(|scratch| convolve_many_with_scratch(histograms, max_buckets, scratch))
}

/// As [`convolve_many_with_limit`], with caller-provided scratch buffers.
///
/// The fold accumulates into the scratch instead of cloning the first
/// histogram, and every intermediate result stays in reused buffers; only the
/// final histogram is allocated.
pub fn convolve_many_with_scratch(
    histograms: &[Histogram1D],
    max_buckets: usize,
    scratch: &mut ConvolveScratch,
) -> Result<Histogram1D, HistError> {
    let (first, rest) = histograms.split_first().ok_or(HistError::EmptyInput)?;
    if rest.is_empty() {
        return Ok(first.clone());
    }
    let ConvolveScratch {
        events,
        entries,
        acc_buckets,
        acc_probs,
        coarsen,
    } = scratch;
    acc_buckets.clear();
    acc_buckets.extend_from_slice(first.buckets());
    acc_probs.clear();
    acc_probs.extend_from_slice(first.probs());
    for h in rest {
        convolve_core(
            (acc_buckets, acc_probs),
            (h.buckets(), h.probs()),
            max_buckets,
            events,
            entries,
            coarsen,
        )?;
        let total: f64 = entries.iter().map(|&(_, m)| m).sum();
        if total <= 0.0 {
            return Err(HistError::InvalidProbability(total));
        }
        acc_buckets.clear();
        acc_probs.clear();
        for &(b, m) in entries.iter() {
            acc_buckets.push(b);
            acc_probs.push(m / total);
        }
    }
    Histogram1D::from_disjoint_parts(acc_buckets, acc_probs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(lo: f64, hi: f64) -> Bucket {
        Bucket::new(lo, hi).unwrap()
    }

    #[test]
    fn convolution_mass_sums_to_one() {
        let a =
            Histogram1D::from_entries(vec![(b(10.0, 20.0), 0.5), (b(20.0, 40.0), 0.5)]).unwrap();
        let c =
            Histogram1D::from_entries(vec![(b(5.0, 15.0), 0.25), (b(15.0, 25.0), 0.75)]).unwrap();
        let conv = convolve(&a, &c).unwrap();
        assert!((conv.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn convolution_mean_is_additive() {
        let a =
            Histogram1D::from_entries(vec![(b(10.0, 20.0), 0.3), (b(20.0, 40.0), 0.7)]).unwrap();
        let c = Histogram1D::from_entries(vec![(b(0.0, 10.0), 0.6), (b(10.0, 30.0), 0.4)]).unwrap();
        let conv = convolve(&a, &c).unwrap();
        assert!(
            (conv.mean() - (a.mean() + c.mean())).abs() < 1e-6,
            "mean of sum must equal sum of means: {} vs {}",
            conv.mean(),
            a.mean() + c.mean()
        );
    }

    #[test]
    fn convolution_support_is_minkowski_sum() {
        let a = Histogram1D::uniform(10.0, 20.0).unwrap();
        let c = Histogram1D::uniform(5.0, 8.0).unwrap();
        let conv = convolve(&a, &c).unwrap();
        assert!((conv.min() - 15.0).abs() < 1e-9);
        assert!((conv.max() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn convolving_point_masses_adds_values() {
        let a = Histogram1D::point_mass(30.0, 1.0).unwrap();
        let c = Histogram1D::point_mass(12.0, 1.0).unwrap();
        let conv = convolve(&a, &c).unwrap();
        assert!(conv.buckets()[0].contains(42.5));
        assert!((conv.probs()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn convolve_many_matches_pairwise() {
        let a = Histogram1D::uniform(0.0, 10.0).unwrap();
        let c = Histogram1D::uniform(5.0, 10.0).unwrap();
        let d = Histogram1D::uniform(1.0, 2.0).unwrap();
        let step = convolve(&convolve(&a, &c).unwrap(), &d).unwrap();
        let many = convolve_many(&[a, c, d]).unwrap();
        assert!((step.mean() - many.mean()).abs() < 1e-6);
        assert!((step.min() - many.min()).abs() < 1e-9);
        assert!((step.max() - many.max()).abs() < 1e-9);
    }

    #[test]
    fn convolve_many_rejects_empty() {
        assert!(convolve_many(&[]).is_err());
    }

    #[test]
    fn limit_caps_bucket_count() {
        let hs: Vec<Histogram1D> = (0..8)
            .map(|i| {
                Histogram1D::from_entries(vec![
                    (b(10.0 + i as f64, 20.0 + i as f64), 0.4),
                    (b(30.0 + i as f64, 50.0 + i as f64), 0.6),
                ])
                .unwrap()
            })
            .collect();
        let conv = convolve_many_with_limit(&hs, 16).unwrap();
        assert!(conv.bucket_count() <= 16);
        assert!((conv.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
