//! # pathcost-hist
//!
//! Distribution machinery for the hybrid-graph path cost estimation system
//! (Dai et al., PVLDB 2016, §3):
//!
//! * [`RawDistribution`] — the empirical "raw cost distribution" obtained from
//!   qualified trajectories (a multiset of cost values with relative
//!   frequencies),
//! * [`Histogram1D`] — one-dimensional histograms with uniform-within-bucket
//!   semantics, used to represent univariate travel-cost distributions,
//! * [`voptimal`] — V-Optimal bucket boundary selection,
//! * [`auto`] — the paper's self-tuning ("Auto") bucket-count selection via
//!   f-fold cross validation, plus the fixed `Sta-b` alternative,
//! * [`HistogramNd`] — multi-dimensional histograms over hyper-buckets, used
//!   to represent the joint distribution of a path's edge costs,
//! * [`convolution`] — independent-sum convolution of 1-D histograms (the
//!   legacy-baseline substrate), built on the sweep-line kernel of the
//!   private `sweep` module with reusable [`ConvolveScratch`] buffers,
//! * [`naive`] — the retained pre-optimisation reference implementations the
//!   fast kernels are property-tested (and benchmarked) against,
//! * [`divergence`] — KL divergence and entropy,
//! * [`standard`] — Gaussian / Gamma / Exponential maximum-likelihood fits for
//!   the Figure 11(a) comparison.

pub mod auto;
pub mod bucket;
pub mod convolution;
pub mod divergence;
pub mod error;
pub mod histogram1d;
pub mod multidim;
pub mod naive;
pub mod raw;
pub mod standard;
mod sweep;
pub mod voptimal;

pub use auto::{AutoConfig, BucketSelection};
pub use bucket::Bucket;
pub use convolution::{convolve, convolve_many, ConvolveScratch};
pub use divergence::{entropy_of_probs, kl_divergence, kl_divergence_histograms};
pub use error::HistError;
pub use histogram1d::Histogram1D;
pub use multidim::HistogramNd;
pub use raw::RawDistribution;
pub use standard::{ExponentialDist, GammaDist, GaussianDist, StandardFit};
