//! The `/metrics` Prometheus exposition and the server's own telemetry.
//!
//! Two sources feed one page:
//!
//! * **Registry-backed instruments** ([`ServerObs`]) for telemetry that has
//!   no prior home: per-status-class request counters, the open-connection
//!   gauge, write-timeout and slow-query counters, per-stage latency
//!   histograms fed from finished traces, and `pathcost_build_info`.
//! * **Derived series**, rendered at scrape time from the same
//!   single-source-of-truth snapshots that `GET /stats` reads
//!   ([`ServiceStats`], the admission queue's gauges, the per-shard cache
//!   counters, [`PersistenceStatus`]) — so `/stats` and `/metrics` cannot
//!   disagree: they are two encodings of one read.
//!
//! Power-of-two [`LatencySnapshot`] histograms are converted to Prometheus
//! `le`-second buckets exactly (bucket `i`'s upper edge `2^(i+1)` µs); the
//! `_sum` is exact where the recorder tracks it (`latency_micros_sum`) and
//! a conservative upper-edge approximation otherwise.

use crate::server::ServerConfig;
use pathcost_obs::{
    exponential_buckets, Counter, ExpositionWriter, FinishedTrace, Gauge, Histogram,
    HistogramSnapshot, MetricKind, Registry, Stage, TraceRing, STAGE_COUNT,
};
use pathcost_persist::PersistenceStatus;
use pathcost_service::{
    LatencySnapshot, RegimeTally, ServiceStats, ShardCounters, FALLBACK_DEPTH_BUCKETS,
    LATENCY_BUCKETS,
};
use std::collections::BTreeMap;
use std::time::Instant;

/// Status classes tracked by `pathcost_http_requests_total`.
const CLASSES: [&str; 5] = ["2xx", "3xx", "4xx", "5xx", "aborted"];

/// The server's own instruments plus the finished-trace ring — one per
/// [`Server::run`](crate::Server::run), shared by every connection thread.
pub(crate) struct ServerObs {
    registry: Registry,
    /// Process-start instant: `/healthz` uptime and `pathcost_uptime_seconds`.
    pub started: Instant,
    /// Recently finished request traces, newest first (`GET /debug/traces`).
    pub traces: TraceRing,
    /// `pathcost_http_requests_total{class=...}`, indexed like [`CLASSES`].
    requests: [Counter; 5],
    /// `pathcost_open_connections` (accepted and not yet closed).
    pub connections: Gauge,
    /// Connections refused over [`ServerConfig::max_connections`].
    pub connections_rejected: Counter,
    /// Responses whose socket write timed out (client stopped reading).
    pub write_timeouts: Counter,
    /// Requests over the slow-query threshold (also logged as events).
    pub slow_queries: Counter,
    /// `pathcost_request_stage_seconds{stage=...}`, indexed by `Stage::ALL`.
    stages: [Histogram; STAGE_COUNT],
}

impl ServerObs {
    pub fn new(config: &ServerConfig) -> Self {
        let registry = Registry::new();
        registry
            .gauge(
                "pathcost_build_info",
                "Build metadata; the value is always 1.",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1);
        let requests = CLASSES.map(|class| {
            registry.counter(
                "pathcost_http_requests_total",
                "HTTP responses by status class (aborted = write failed).",
                &[("class", class)],
            )
        });
        let connections = registry.gauge(
            "pathcost_open_connections",
            "Connections accepted and not yet closed.",
            &[],
        );
        let connections_rejected = registry.counter(
            "pathcost_connections_rejected_total",
            "Connections answered 503 over the max_connections cap.",
            &[],
        );
        let write_timeouts = registry.counter(
            "pathcost_write_timeouts_total",
            "Response writes abandoned on the socket write timeout.",
            &[],
        );
        let slow_queries = registry.counter(
            "pathcost_slow_queries_total",
            "Requests over the slow-query threshold (see the event log).",
            &[],
        );
        let stage_bounds = exponential_buckets(1e-6, 4.0, 12);
        let stages = Stage::ALL.map(|stage| {
            registry.histogram(
                "pathcost_request_stage_seconds",
                "Per-stage request latency from finished traces.",
                &[("stage", stage.name())],
                &stage_bounds,
            )
        });
        ServerObs {
            registry,
            started: Instant::now(),
            traces: TraceRing::new(config.trace_ring_capacity),
            requests,
            connections,
            connections_rejected,
            write_timeouts,
            slow_queries,
            stages,
        }
    }

    /// Files a finished trace into the status-class counters and the
    /// per-stage histograms (stages the request never entered are skipped,
    /// so a `/healthz` hit does not drag the eval histogram toward zero).
    pub fn observe_request(&self, trace: &FinishedTrace) {
        let class = match trace.status / 100 {
            2 => 0,
            3 => 1,
            4 => 2,
            5 => 3,
            _ => 4, // status 0: the response write failed mid-flight
        };
        self.requests[class].inc();
        for (stage, hist) in Stage::ALL.iter().zip(&self.stages) {
            let micros = trace.stage(*stage);
            if micros > 0 {
                hist.observe(micros as f64 / 1e6);
            }
        }
    }
}

/// Converts a power-of-two microsecond [`LatencySnapshot`] into the
/// cumulative second-bounded form the exposition writer wants. The last
/// power-of-two bucket (≥ ~36 minutes) folds into `+Inf`. `exact_sum_micros`
/// supplies a true `_sum` where the recorder tracks one; otherwise the sum
/// is approximated conservatively from bucket upper edges.
fn latency_histogram(snap: &LatencySnapshot, exact_sum_micros: Option<u64>) -> HistogramSnapshot {
    let mut bounds = Vec::with_capacity(LATENCY_BUCKETS - 1);
    let mut cumulative = Vec::with_capacity(LATENCY_BUCKETS);
    let mut running = 0u64;
    let mut approx_sum_micros = 0.0f64;
    for (i, &count) in snap.counts.iter().enumerate() {
        running += count;
        let upper_micros = (1u64 << (i + 1)) as f64;
        approx_sum_micros += count as f64 * upper_micros;
        if i < LATENCY_BUCKETS - 1 {
            bounds.push(upper_micros / 1e6);
            cumulative.push(running);
        }
    }
    cumulative.push(running); // +Inf
    let sum_micros = exact_sum_micros.map_or(approx_sum_micros, |s| s as f64);
    HistogramSnapshot {
        bounds,
        cumulative,
        sum: sum_micros / 1e6,
    }
}

/// Everything `/metrics` derives that the registry does not own. All fields
/// are point-in-time reads the connection thread takes under no locks the
/// ingest or eval paths contend on.
pub(crate) struct ScrapeView<'a> {
    pub stats: &'a ServiceStats,
    pub shards: &'a [ShardCounters],
    pub epoch: u64,
    pub queue_depth: usize,
    pub queue_degraded: bool,
    pub e2e: &'a LatencySnapshot,
    pub queue_wait: &'a LatencySnapshot,
    /// Per-regime cache tallies for non-global regimes, keyed by regime id.
    pub regimes: &'a BTreeMap<u16, RegimeTally>,
    pub persistence: Option<&'a PersistenceStatus>,
}

/// Renders the full exposition page: registry families first, then the
/// derived series for every layer (admission, engine, cache, ingest,
/// persistence). The output passes [`pathcost_obs::expo::validate`].
pub(crate) fn render(obs: &ServerObs, view: &ScrapeView<'_>) -> String {
    let mut w = ExpositionWriter::new();
    obs.registry.render_into(&mut w);

    let stats = view.stats;
    w.family(
        "pathcost_uptime_seconds",
        MetricKind::Gauge,
        "Seconds since the server started.",
    );
    w.sample(
        "pathcost_uptime_seconds",
        &[],
        obs.started.elapsed().as_secs_f64(),
    );
    w.family(
        "pathcost_epoch",
        MetricKind::Gauge,
        "Currently published weight-function epoch.",
    );
    w.sample("pathcost_epoch", &[], view.epoch as f64);

    // --- admission ---
    w.family(
        "pathcost_admission_queue_depth",
        MetricKind::Gauge,
        "Requests admitted and not yet dispatched.",
    );
    w.sample(
        "pathcost_admission_queue_depth",
        &[],
        view.queue_depth as f64,
    );
    w.family(
        "pathcost_admission_degraded",
        MetricKind::Gauge,
        "1 while the load-watermark policy is degrading service.",
    );
    w.sample(
        "pathcost_admission_degraded",
        &[],
        if view.queue_degraded { 1.0 } else { 0.0 },
    );
    w.family(
        "pathcost_admission_shed_total",
        MetricKind::Counter,
        "Requests shed in the queue on an expired deadline (answered 504).",
    );
    w.sample(
        "pathcost_admission_shed_total",
        &[],
        stats.shed_deadline as f64,
    );
    w.family(
        "pathcost_admission_rejected_degraded_total",
        MetricKind::Counter,
        "Submissions refused at the admission door while degraded (answered 429).",
    );
    w.sample(
        "pathcost_admission_rejected_degraded_total",
        &[],
        stats.rejected_degraded as f64,
    );
    w.family(
        "pathcost_admission_queue_wait_seconds",
        MetricKind::Histogram,
        "Time admitted requests waited before dispatch.",
    );
    w.histogram(
        "pathcost_admission_queue_wait_seconds",
        &[],
        &latency_histogram(view.queue_wait, None),
    );
    w.family(
        "pathcost_request_e2e_seconds",
        MetricKind::Histogram,
        "End-to-end request latency (submit to answered ticket).",
    );
    w.histogram(
        "pathcost_request_e2e_seconds",
        &[],
        &latency_histogram(view.e2e, None),
    );
    w.family(
        "pathcost_batches_total",
        MetricKind::Counter,
        "Cross-connection batches dispatched.",
    );
    w.sample("pathcost_batches_total", &[], stats.batches as f64);
    w.family(
        "pathcost_batch_requests_total",
        MetricKind::Counter,
        "Requests that arrived inside dispatched batches.",
    );
    w.sample(
        "pathcost_batch_requests_total",
        &[],
        stats.batch_requests as f64,
    );
    w.family(
        "pathcost_batch_jobs_deduplicated_total",
        MetricKind::Counter,
        "Estimation jobs skipped via intra-batch (path, interval) sharing.",
    );
    w.sample(
        "pathcost_batch_jobs_deduplicated_total",
        &[],
        stats.batch_jobs_deduplicated as f64,
    );

    // --- engine ---
    w.family(
        "pathcost_queries_total",
        MetricKind::Counter,
        "Queries served by kind (including failed ones).",
    );
    for (kind, count) in [
        ("estimate", stats.estimate_queries),
        ("probability", stats.probability_queries),
        ("rank", stats.rank_queries),
        ("route", stats.route_queries),
    ] {
        w.sample("pathcost_queries_total", &[("kind", kind)], count as f64);
    }
    w.family(
        "pathcost_query_errors_total",
        MetricKind::Counter,
        "Queries that returned an error.",
    );
    w.sample("pathcost_query_errors_total", &[], stats.errors as f64);
    w.family(
        "pathcost_query_seconds",
        MetricKind::Histogram,
        "Per-query evaluation latency, all outcomes merged (exact sum).",
    );
    w.histogram(
        "pathcost_query_seconds",
        &[],
        &latency_histogram(&stats.latency, Some(stats.latency_micros_sum)),
    );
    w.family(
        "pathcost_query_outcome_seconds",
        MetricKind::Histogram,
        "Per-query latency split by outcome (shed = queue wait until shed).",
    );
    for (outcome, snap) in [
        ("ok", &stats.latency_ok),
        ("failed", &stats.latency_failed),
        ("shed", &stats.latency_shed),
    ] {
        w.histogram(
            "pathcost_query_outcome_seconds",
            &[("outcome", outcome)],
            &latency_histogram(snap, None),
        );
    }
    for (name, help, value) in [
        (
            "pathcost_deadline_exceeded_total",
            "Requests answered DeadlineExceeded (shed or mid-evaluation).",
            stats.deadline_exceeded,
        ),
        (
            "pathcost_cancelled_total",
            "Requests abandoned mid-evaluation by explicit cancellation.",
            stats.cancelled,
        ),
        (
            "pathcost_degraded_answers_total",
            "Requests answered in degraded mode (no warm phase, capped budgets).",
            stats.degraded_answers,
        ),
        (
            "pathcost_panicked_queries_total",
            "Query evaluations that panicked (contained, answered 500).",
            stats.panicked_queries,
        ),
        (
            "pathcost_estimations_total",
            "Full estimator runs (cache misses that did the work).",
            stats.estimations,
        ),
        (
            "pathcost_prefix_warmed_jobs_total",
            "Estimation jobs built by the prefix-sharing warm phase.",
            stats.prefix_warmed_jobs,
        ),
        (
            "pathcost_route_expansions_total",
            "Partial paths popped and extended by the best-first router.",
            stats.route_expansions,
        ),
        (
            "pathcost_route_candidates_total",
            "Complete candidate paths evaluated across Route searches.",
            stats.route_candidates_evaluated,
        ),
        (
            "pathcost_route_prunes_total",
            "Partial paths dropped by the router's incumbent bound.",
            stats.route_incumbent_prunes,
        ),
        (
            "pathcost_route_cache_hits_total",
            "Distribution-cache hits scored by Route candidate evaluations.",
            stats.route_eval_cache_hits,
        ),
    ] {
        w.family(name, MetricKind::Counter, help);
        w.sample(name, &[], value as f64);
    }

    // --- cache (per shard + whole-cache series) ---
    for (name, help, pick) in [
        (
            "pathcost_cache_hits_total",
            "Distribution-cache hits by shard.",
            (|c: &ShardCounters| c.hits) as fn(&ShardCounters) -> u64,
        ),
        (
            "pathcost_cache_misses_total",
            "Distribution-cache misses by shard.",
            |c: &ShardCounters| c.misses,
        ),
        (
            "pathcost_cache_evictions_total",
            "LRU capacity evictions by shard (invalidation counted separately).",
            |c: &ShardCounters| c.evictions,
        ),
    ] {
        w.family(name, MetricKind::Counter, help);
        for (i, shard) in view.shards.iter().enumerate() {
            let label = i.to_string();
            w.sample(name, &[("shard", &label)], pick(shard) as f64);
        }
    }
    w.family(
        "pathcost_cache_insertions_total",
        MetricKind::Counter,
        "Distribution-cache insertions (estimations plus warm fills).",
    );
    w.sample(
        "pathcost_cache_insertions_total",
        &[],
        stats.cache_insertions as f64,
    );
    w.family(
        "pathcost_cache_invalidation_evictions_total",
        MetricKind::Counter,
        "Entries evicted by live-update invalidation, by mechanism.",
    );
    for (mode, count) in [
        ("tracked", stats.invalidation_tracked_evictions),
        ("swept", stats.invalidation_swept_evictions),
    ] {
        w.sample(
            "pathcost_cache_invalidation_evictions_total",
            &[("mode", mode)],
            count as f64,
        );
    }

    // --- regimes ---
    w.family(
        "pathcost_regime_fallback_total",
        MetricKind::Counter,
        "Regime-tagged lookups by fallback-ladder depth (0 = regime-specific data).",
    );
    for (depth, count) in stats.regime_fallback.iter().enumerate() {
        let label = if depth == FALLBACK_DEPTH_BUCKETS - 1 {
            format!("{depth}+")
        } else {
            depth.to_string()
        };
        w.sample(
            "pathcost_regime_fallback_total",
            &[("depth", &label)],
            *count as f64,
        );
    }
    if !view.regimes.is_empty() {
        for (name, help, pick) in [
            (
                "pathcost_regime_cache_hits_total",
                "Distribution-cache hits by requested (non-global) regime.",
                (|t: &RegimeTally| t.hits) as fn(&RegimeTally) -> u64,
            ),
            (
                "pathcost_regime_cache_misses_total",
                "Distribution-cache misses by requested (non-global) regime.",
                |t: &RegimeTally| t.misses,
            ),
        ] {
            w.family(name, MetricKind::Counter, help);
            for (regime, tally) in view.regimes {
                let label = regime.to_string();
                w.sample(name, &[("regime", &label)], pick(tally) as f64);
            }
        }
    }

    // --- live ingest ---
    w.family(
        "pathcost_ingest_updates_total",
        MetricKind::Counter,
        "Live weight updates applied through apply_update.",
    );
    w.sample(
        "pathcost_ingest_updates_total",
        &[],
        stats.ingest_updates as f64,
    );
    w.family(
        "pathcost_ingest_publish_seconds",
        MetricKind::Histogram,
        "Wall time each update spent publishing its epoch (swap + invalidation).",
    );
    w.histogram(
        "pathcost_ingest_publish_seconds",
        &[],
        &latency_histogram(&stats.ingest_publish_latency, None),
    );
    w.family(
        "pathcost_ingest_trajectories_total",
        MetricKind::Counter,
        "Trajectories appended across applied updates.",
    );
    w.sample(
        "pathcost_ingest_trajectories_total",
        &[],
        stats.ingest_trajectories as f64,
    );
    w.family(
        "pathcost_ingest_trajectories_retired_total",
        MetricKind::Counter,
        "Trajectories retired (TTL or removal) across applied updates.",
    );
    w.sample(
        "pathcost_ingest_trajectories_retired_total",
        &[],
        stats.ingest_trajectories_retired as f64,
    );
    w.family(
        "pathcost_ingest_variables_total",
        MetricKind::Counter,
        "Weight-function variables touched by updates, by operation.",
    );
    for (op, count) in [
        ("updated", stats.ingest_variables_updated),
        ("added", stats.ingest_variables_added),
        ("removed", stats.ingest_variables_removed),
    ] {
        w.sample(
            "pathcost_ingest_variables_total",
            &[("op", op)],
            count as f64,
        );
    }

    // --- persistence ---
    if let Some(status) = view.persistence {
        for (name, help, value) in [
            (
                "pathcost_persist_snapshots_total",
                "Snapshots published by this process.",
                status.snapshots_written(),
            ),
            (
                "pathcost_persist_snapshot_fallbacks_total",
                "Snapshot attempts that fell back down the IO-fault ladder.",
                status.snapshot_fallbacks(),
            ),
            (
                "pathcost_persist_suspensions_total",
                "Times persistence entered the suspended state.",
                status.suspensions(),
            ),
            (
                "pathcost_persist_io_retries_total",
                "Transient IO errors retried by the ingest path.",
                status.io_retries(),
            ),
            (
                "pathcost_persist_replayed_records_total",
                "Journal records replayed during the last recovery.",
                status.replayed_records(),
            ),
            (
                "pathcost_persist_corrupt_generations_total",
                "Snapshot generations skipped as corrupt during recovery.",
                status.corrupt_generations_skipped(),
            ),
        ] {
            w.family(name, MetricKind::Counter, help);
            w.sample(name, &[], value as f64);
        }
        for (name, help, value) in [
            (
                "pathcost_persist_snapshot_epoch",
                "Epoch of the most recent published snapshot (0 = none).",
                status.snapshot_epoch() as f64,
            ),
            (
                "pathcost_persist_journal_records",
                "Valid records currently in the journal.",
                status.journal_records() as f64,
            ),
            (
                "pathcost_persist_journal_bytes",
                "Current journal size in bytes.",
                status.journal_bytes() as f64,
            ),
            (
                "pathcost_persist_suspended",
                "1 while persistence is suspended (serving-only mode).",
                if status.suspended() { 1.0 } else { 0.0 },
            ),
        ] {
            w.family(name, MetricKind::Gauge, help);
            w.sample(name, &[], value);
        }
        w.family(
            "pathcost_persist_fsync_seconds",
            MetricKind::Histogram,
            "Journal fsync latency.",
        );
        w.histogram(
            "pathcost_persist_fsync_seconds",
            &[],
            &status.fsync_latency(),
        );
        w.family(
            "pathcost_persist_snapshot_seconds",
            MetricKind::Histogram,
            "End-to-end snapshot publish duration.",
        );
        w.histogram(
            "pathcost_persist_snapshot_seconds",
            &[],
            &status.snapshot_duration(),
        );
    }

    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathcost_obs::expo::validate;
    use pathcost_obs::ActiveTrace;
    use std::time::Duration;

    fn sample_view<'a>(
        stats: &'a ServiceStats,
        shards: &'a [ShardCounters],
        e2e: &'a LatencySnapshot,
        queue_wait: &'a LatencySnapshot,
        regimes: &'a BTreeMap<u16, RegimeTally>,
        persistence: Option<&'a PersistenceStatus>,
    ) -> ScrapeView<'a> {
        ScrapeView {
            stats,
            shards,
            epoch: 3,
            queue_depth: 2,
            queue_degraded: true,
            e2e,
            queue_wait,
            regimes,
            persistence,
        }
    }

    #[test]
    fn rendered_page_validates_with_and_without_persistence() {
        let obs = ServerObs::new(&ServerConfig::default());
        let trace = ActiveTrace::start("t1".to_string(), "/query".to_string());
        trace.record(Stage::Eval, Duration::from_micros(250));
        trace.record(Stage::Write, Duration::from_micros(40));
        obs.observe_request(&trace.finish(200));
        obs.observe_request(&trace.finish(0)); // aborted write

        let mut regime_fallback = [0u64; FALLBACK_DEPTH_BUCKETS];
        regime_fallback[1] = 3;
        regime_fallback[FALLBACK_DEPTH_BUCKETS - 1] = 2;
        let stats = ServiceStats {
            estimate_queries: 4,
            latency_micros_sum: 1_000,
            rejected_degraded: 6,
            regime_fallback,
            ..ServiceStats::default()
        };
        let shards = vec![ShardCounters::default(); 4];
        let mut e2e = LatencySnapshot::default();
        e2e.counts[3] = 7;
        e2e.max_micros = 12;
        let queue_wait = LatencySnapshot::default();
        let regimes = BTreeMap::from([(2u16, RegimeTally { hits: 5, misses: 1 })]);

        let page = render(
            &obs,
            &sample_view(&stats, &shards, &e2e, &queue_wait, &regimes, None),
        );
        validate(&page).expect("page without persistence validates");
        assert!(page.contains("pathcost_build_info{version="));
        assert!(page.contains("pathcost_http_requests_total{class=\"2xx\"} 1"));
        assert!(page.contains("pathcost_http_requests_total{class=\"aborted\"} 1"));
        assert!(page.contains("pathcost_admission_degraded 1"));
        assert!(page.contains("pathcost_admission_rejected_degraded_total 6"));
        assert!(page.contains("pathcost_queries_total{kind=\"estimate\"} 4"));
        assert!(page.contains("pathcost_cache_hits_total{shard=\"3\"}"));
        assert!(page.contains("pathcost_regime_fallback_total{depth=\"1\"} 3"));
        assert!(page.contains("pathcost_regime_fallback_total{depth=\"4+\"} 2"));
        assert!(page.contains("pathcost_regime_cache_hits_total{regime=\"2\"} 5"));
        assert!(page.contains("pathcost_regime_cache_misses_total{regime=\"2\"} 1"));
        assert!(!page.contains("pathcost_persist_"));

        let status = PersistenceStatus::new();
        status.record_fsync(Duration::from_micros(90));
        status.record_snapshot(5, 1_000);
        let no_regimes = BTreeMap::new();
        let page = render(
            &obs,
            &sample_view(
                &stats,
                &shards,
                &e2e,
                &queue_wait,
                &no_regimes,
                Some(&status),
            ),
        );
        validate(&page).expect("page with persistence validates");
        assert!(page.contains("pathcost_persist_snapshots_total 1"));
        assert!(page.contains("pathcost_persist_fsync_seconds_count 1"));
        assert!(
            !page.contains("pathcost_regime_cache_hits_total"),
            "per-regime series omitted when no regime traffic was seen"
        );
    }

    #[test]
    fn latency_conversion_is_cumulative_and_exact_about_counts() {
        let mut snap = LatencySnapshot::default();
        snap.counts[0] = 2; // [1, 2) µs
        snap.counts[3] = 5; // [8, 16) µs
        snap.counts[LATENCY_BUCKETS - 1] = 1; // folds into +Inf
        snap.max_micros = u64::MAX;
        let hist = latency_histogram(&snap, Some(100));
        assert_eq!(hist.bounds.len(), LATENCY_BUCKETS - 1);
        assert_eq!(hist.cumulative.len(), LATENCY_BUCKETS);
        assert_eq!(hist.count(), 8);
        assert_eq!(hist.cumulative[0], 2);
        assert_eq!(hist.cumulative[3], 7);
        assert_eq!(hist.cumulative[LATENCY_BUCKETS - 2], 7, "last finite bound");
        assert!((hist.sum - 100e-6).abs() < 1e-12, "exact sum wins");
        assert!((hist.bounds[0] - 2e-6).abs() < 1e-18, "2 µs upper edge");
    }
}
