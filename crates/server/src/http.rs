//! Minimal blocking HTTP/1.1 reader/writer.
//!
//! Hand-rolled on purpose: the workspace has no network crates (offline
//! vendoring, see `vendor/README.md`) and the server only needs the subset
//! a JSON API front-end speaks — request line + headers + `Content-Length`
//! bodies, keep-alive, and `Expect: 100-continue`. Everything is bounded
//! ([`Limits`]) so a hostile peer can cost at most a few KiB of buffer per
//! connection, and every malformed input maps to a 4xx/close instead of a
//! panic (`tests/http_robustness.rs` drives those paths over real sockets).

use std::io::{self, BufRead, Write};
use std::time::Instant;

/// Hard caps on what one request may consume.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Longest accepted request line (method + target + version), bytes.
    pub max_request_line: usize,
    /// Longest accepted single header line, bytes.
    pub max_header_line: usize,
    /// Most headers accepted per request.
    pub max_headers: usize,
    /// Largest accepted body, bytes; beyond this → 413.
    pub max_body: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 8 * 1024,
            max_header_line: 8 * 1024,
            max_headers: 64,
            max_body: 1024 * 1024,
        }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// The request target, e.g. `/query`.
    pub target: String,
    /// Decoded body (empty when the request has none).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Client-supplied per-request deadline from the `x-deadline-ms` header:
    /// milliseconds the client is willing to wait, counted from parse time.
    /// `None` when absent (the server's default applies).
    pub deadline_ms: Option<u64>,
    /// Client-supplied trace id from the `x-trace-id` header, sanitized to
    /// printable ASCII ≤ 64 bytes (anything else is treated as absent so an
    /// hostile value cannot inject response headers). The server echoes it
    /// and keys the request's spans by it; absent ids are minted.
    pub trace_id: Option<String>,
    /// When the first byte of this request arrived on the socket — the start
    /// of the parse span. Unlike "when `read_request` was called", this
    /// excludes however long the connection sat idle in keep-alive.
    pub received: Option<Instant>,
}

/// Why reading a request failed. [`Self::status`] maps the parse failures
/// to response codes; I/O conditions close the connection instead.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out before any request byte arrived — the caller
    /// decides whether to keep waiting (keep-alive poll) or give up.
    Idle,
    /// The read timed out (or hit EOF) mid-request.
    Truncated,
    /// Malformed request line / headers / framing → 400.
    BadRequest(&'static str),
    /// Request line over [`Limits::max_request_line`] → 414.
    UriTooLong,
    /// Header section over the limits → 431.
    HeadersTooLarge,
    /// Body over [`Limits::max_body`] → 413.
    PayloadTooLarge,
    /// `Transfer-Encoding` framing the server does not speak → 501.
    UnsupportedEncoding,
    /// Any other socket error.
    Io(io::Error),
}

impl HttpError {
    /// The status line to answer with, when answering is possible.
    pub fn status(&self) -> Option<(u16, &'static str)> {
        match self {
            HttpError::BadRequest(_) => Some((400, "Bad Request")),
            HttpError::UriTooLong => Some((414, "URI Too Long")),
            HttpError::HeadersTooLarge => Some((431, "Request Header Fields Too Large")),
            HttpError::PayloadTooLarge => Some((413, "Payload Too Large")),
            HttpError::UnsupportedEncoding => Some((501, "Not Implemented")),
            HttpError::Truncated => Some((408, "Request Timeout")),
            HttpError::Closed | HttpError::Idle | HttpError::Io(_) => None,
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one line terminated by `\n` (tolerating a preceding `\r`), bounded
/// by `max` bytes. `started` reports whether any byte of the *request* had
/// been consumed before this line began, which distinguishes an idle
/// keep-alive timeout from a mid-request one.
fn read_line<R: BufRead>(
    reader: &mut R,
    max: usize,
    started: bool,
    over_limit: HttpError,
    first_byte: &mut Option<Instant>,
) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return Err(if line.is_empty() && !started {
                    HttpError::Closed
                } else {
                    HttpError::Truncated
                });
            }
            Ok(_) => {
                if first_byte.is_none() {
                    *first_byte = Some(Instant::now());
                }
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map_err(|_| HttpError::BadRequest("non-UTF-8 header data"));
                }
                line.push(byte[0]);
                if line.len() > max {
                    return Err(over_limit);
                }
            }
            Err(e) if is_timeout(&e) => {
                return Err(if line.is_empty() && !started {
                    HttpError::Idle
                } else {
                    HttpError::Truncated
                });
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Reads and parses one request. `writer` is used only to acknowledge
/// `Expect: 100-continue` before the body is read (curl sends it for any
/// body over 1 KiB and waits for the interim response).
pub fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    limits: &Limits,
) -> Result<Request, HttpError> {
    let mut received: Option<Instant> = None;
    let request_line = read_line(
        reader,
        limits.max_request_line,
        false,
        HttpError::UriTooLong,
        &mut received,
    )?;

    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::BadRequest("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .filter(|t| t.starts_with('/'))
        .ok_or(HttpError::BadRequest("missing or relative request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::BadRequest("missing HTTP version"))?;
    if parts.next().is_some() {
        return Err(HttpError::BadRequest("malformed request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest("unsupported HTTP version")),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive = http11;
    let mut expect_continue = false;
    let mut deadline_ms: Option<u64> = None;
    let mut trace_id: Option<String> = None;
    let mut headers = 0usize;
    loop {
        let line = read_line(
            reader,
            limits.max_header_line,
            true,
            HttpError::HeadersTooLarge,
            &mut received,
        )?;
        if line.is_empty() {
            break;
        }
        headers += 1;
        if headers > limits.max_headers {
            return Err(HttpError::HeadersTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header line without ':'"))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                let parsed: usize = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest("unparseable Content-Length"))?;
                if content_length.is_some_and(|prev| prev != parsed) {
                    return Err(HttpError::BadRequest("conflicting Content-Length headers"));
                }
                content_length = Some(parsed);
            }
            "transfer-encoding" if !value.eq_ignore_ascii_case("identity") => {
                return Err(HttpError::UnsupportedEncoding);
            }
            "connection" => {
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
            "expect" => {
                if value.eq_ignore_ascii_case("100-continue") {
                    expect_continue = true;
                } else {
                    return Err(HttpError::BadRequest("unsupported Expect header"));
                }
            }
            "x-deadline-ms" => {
                deadline_ms = Some(
                    value
                        .parse()
                        .map_err(|_| HttpError::BadRequest("unparseable x-deadline-ms"))?,
                );
            }
            // Echoed into a response header, so only printable ASCII of
            // sane length is honoured; anything else gets a minted id.
            "x-trace-id"
                if !value.is_empty()
                    && value.len() <= 64
                    && value.bytes().all(|b| b.is_ascii_graphic()) =>
            {
                trace_id = Some(value.to_string());
            }
            _ => {}
        }
    }

    let length = content_length.unwrap_or(0);
    if length > limits.max_body {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; length];
    if length > 0 {
        if expect_continue {
            writer
                .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
                .and_then(|()| writer.flush())
                .map_err(HttpError::Io)?;
        }
        let mut filled = 0;
        while filled < length {
            match reader.read(&mut body[filled..]) {
                Ok(0) => return Err(HttpError::Truncated),
                Ok(n) => filled += n,
                Err(e) if is_timeout(&e) => return Err(HttpError::Truncated),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }

    Ok(Request {
        method,
        target,
        body,
        keep_alive,
        deadline_ms,
        trace_id,
        received,
    })
}

/// Writes one response with a JSON body and correct framing.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(writer, status, reason, body, keep_alive, &[])
}

/// [`write_response`] plus extra response headers (e.g. `Retry-After` on
/// overload responses). Header names must be valid as-is; values are written
/// verbatim.
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    write_response_full(
        writer,
        status,
        reason,
        "application/json",
        body,
        keep_alive,
        extra_headers,
    )
}

/// [`write_response_with`] with an explicit content type — the `/metrics`
/// exposition is `text/plain`, everything else JSON.
pub fn write_response_full<W: Write>(
    writer: &mut W,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra_headers: &[(&str, String)],
) -> io::Result<()> {
    let connection = if keep_alive { "keep-alive" } else { "close" };
    // One write_all, not write!(...) straight to the socket: the format
    // machinery issues a separate small write per fragment, and on an
    // unbuffered TcpStream that interacts with Nagle + delayed ACK to add
    // ~40ms per response.
    let mut response = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
        body.len(),
    );
    for (name, value) in extra_headers {
        response.push_str(name);
        response.push_str(": ");
        response.push_str(value);
        response.push_str("\r\n");
    }
    response.push_str("\r\n");
    response.push_str(body);
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse_bytes(input: &[u8]) -> Result<Request, HttpError> {
        let mut reader = BufReader::new(input);
        let mut sink = Vec::new();
        read_request(&mut reader, &mut sink, &Limits::default())
    }

    #[test]
    fn parses_a_simple_post() {
        let req = parse_bytes(b"POST /query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/query");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse_bytes(b"GET /healthz HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_inputs_map_to_4xx() {
        assert!(matches!(
            parse_bytes(b"BROKEN\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"GET /x SPDY/3\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"GET /x HTTP/1.1\r\nbad header line\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: moo\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            parse_bytes(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedEncoding)
        ));
    }

    #[test]
    fn oversized_inputs_are_rejected_by_limit() {
        let long_target = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(10_000));
        assert!(matches!(
            parse_bytes(long_target.as_bytes()),
            Err(HttpError::UriTooLong)
        ));
        let req = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            Limits::default().max_body + 1
        );
        assert!(matches!(
            parse_bytes(req.as_bytes()),
            Err(HttpError::PayloadTooLarge)
        ));
        let many_headers = format!(
            "GET /x HTTP/1.1\r\n{}\r\n",
            "a: b\r\n".repeat(Limits::default().max_headers + 1)
        );
        assert!(matches!(
            parse_bytes(many_headers.as_bytes()),
            Err(HttpError::HeadersTooLarge)
        ));
    }

    #[test]
    fn truncated_bodies_and_clean_closes_are_distinguished() {
        assert!(matches!(parse_bytes(b""), Err(HttpError::Closed)));
        assert!(matches!(
            parse_bytes(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Truncated)
        ));
        assert!(matches!(
            parse_bytes(b"GET /x HT"),
            Err(HttpError::Truncated)
        ));
    }

    #[test]
    fn expect_continue_is_acknowledged_before_the_body() {
        let input: &[u8] =
            b"POST /q HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok";
        let mut reader = BufReader::new(input);
        let mut interim = Vec::new();
        let req = read_request(&mut reader, &mut interim, &Limits::default()).unwrap();
        assert_eq!(req.body, b"ok");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
    }

    #[test]
    fn responses_are_framed_with_content_length() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "{\"a\":1}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 7\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"a\":1}"));
    }

    #[test]
    fn deadline_header_is_parsed_and_validated() {
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\nX-Deadline-Ms: 250\r\n\r\n").unwrap();
        assert_eq!(req.deadline_ms, Some(250));
        let req = parse_bytes(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.deadline_ms, None);
        assert!(matches!(
            parse_bytes(b"GET /healthz HTTP/1.1\r\nx-deadline-ms: soon\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn extra_headers_are_written_before_the_body() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            503,
            "Service Unavailable",
            "{}",
            false,
            &[("retry-after", "1".to_string())],
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
