//! # pathcost-server
//!
//! A blocking HTTP/1.1 front-end over [`pathcost-service`](pathcost_service):
//! plain `std::net` sockets, a hand-rolled request parser ([`http`]) and a
//! hand-rolled JSON layer ([`json`]) — the workspace's vendored
//! `serde`/`serde_derive` are deliberate no-op shims (offline build, see
//! `vendor/README.md`), so this crate carries its own wire format
//! ([`wire`]). No async runtime: requests are CPU-bound estimator work, so
//! the concurrency model is one scoped thread per connection feeding a
//! shared [`AdmissionQueue`](pathcost_service::AdmissionQueue) whose
//! dispatcher batches requests *across connections* into
//! [`QueryEngine::execute_batch`](pathcost_service::QueryEngine::execute_batch)
//! — concurrent clients asking about overlapping paths share dedup and
//! cache warming exactly like one caller submitting a batch.
//!
//! ## Endpoints
//!
//! | Endpoint | Method | Payload |
//! |---|---|---|
//! | `/query` | POST | one request object (see [`wire`]) |
//! | `/query/batch` | POST | `{"requests": [...]}` |
//! | `/stats` | GET | engine + latency counters (JSON) |
//! | `/metrics` | GET | Prometheus text exposition, every layer |
//! | `/debug/traces` | GET | recent request traces with per-stage spans |
//! | `/healthz` | GET | `{"status":"ok","epoch":N,"version":...,"uptime_s":...}` |
//!
//! Every response echoes an `x-trace-id` header — the client's own id if it
//! sent a sane one, a minted id otherwise — correlating responses with
//! `/debug/traces` entries and slow-query log events. The metric inventory,
//! span model and event-log schema live in `OBSERVABILITY.md` at the
//! repository root.
//!
//! Backpressure is load-shedding: a full admission queue or a connection
//! over [`ServerConfig::max_connections`] answers `503` immediately rather
//! than queueing unbounded work, and every overload answer carries
//! `Retry-After`. Clients can bound their wait with an `x-deadline-ms`
//! header — expired requests are shed before evaluation and answered `504`
//! — and `/healthz` answers `503` while the service is degraded (load
//! watermark breached, or persistence suspended). The full request
//! lifecycle failure model — deadlines, cancellation, degraded modes,
//! hostile-client handling — is documented in `ROBUSTNESS.md` at the
//! repository root and exercised by `tests/chaos_serving.rs`.
//!
//! ## Serving quickstart
//!
//! ```no_run
//! use pathcost_core::{HybridConfig, HybridGraph};
//! use pathcost_server::{Server, ServerConfig};
//! use pathcost_service::{QueryEngine, ServiceConfig};
//! use pathcost_traj::DatasetPreset;
//! use std::sync::Arc;
//!
//! let (net, store) = DatasetPreset::tiny(7).materialise().unwrap();
//! let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
//! let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
//!
//! let server = Server::bind(ServerConfig {
//!     addr: "127.0.0.1:8080".to_string(),
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let shutdown = server.shutdown_handle(); // call shutdown() from ctrl-c etc.
//! server.run(&engine); // blocks until shutdown, then drains in flight
//! # let _ = shutdown;
//! ```
//!
//! Then, from a shell:
//!
//! ```text
//! curl -s localhost:8080/healthz
//! curl -s localhost:8080/query -d '{"type":"prob","path":[0,1],"departure_s":28800,"budget_s":600}'
//! curl -s localhost:8080/query -d '{"type":"route","source":0,"destination":9,"departure_s":28800,"budget_s":900}'
//! curl -s localhost:8080/stats
//! ```
//!
//! `examples/serve_http.rs` boots this end to end on a 10×10 grid fixture
//! and drives it with concurrent socket clients.

pub mod error;
pub mod http;
pub mod json;
mod metrics;
pub mod server;
pub mod wire;

pub use error::ServerError;
pub use http::Limits;
pub use json::Json;
pub use server::{Server, ServerConfig, ShutdownHandle};
