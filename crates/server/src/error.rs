//! Server-level error type.

use std::fmt;
use std::io;

/// Anything that can stop the server from starting or running.
#[derive(Debug)]
pub enum ServerError {
    /// Binding or polling the listening socket failed.
    Io(io::Error),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(e) => write!(f, "server socket error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}
