//! JSON wire format: request decoding and response/stats encoding.
//!
//! ## Requests (`POST /query`)
//!
//! ```json
//! {"type": "estimate", "path": [0, 1, 2], "departure_s": 28800}
//! {"type": "prob", "path": [0, 1], "departure_s": 28800, "budget_s": 600}
//! {"type": "rank", "candidates": [[0, 1], [2, 3]], "departure_s": 0, "budget_s": 600}
//! {"type": "route", "source": 0, "destination": 9, "departure_s": 0, "budget_s": 900, "k": 2}
//! ```
//!
//! Every kind accepts an optional `"regime"` (u16, default 0 = all-traffic):
//! the traffic regime the query evaluates under. Non-zero regimes are echoed
//! back in the response's `stats` object together with the fallback depth
//! the answer resolved at; regime 0 requests produce byte-identical
//! responses to the pre-regime wire format.
//!
//! `POST /query/batch` wraps them: `{"requests": [...]}`.
//!
//! ## Responses
//!
//! Success is `{"type": ..., ...payload, "stats": {...}}` mirroring
//! [`QueryResponse`](pathcost_service::QueryResponse); failures are
//! `{"error": "..."}` with the status from
//! [`error_status`]. Distributions are encoded as
//! `[{"lo": s, "hi": s, "p": p}, ...]` bucket triples.

use crate::json::Json;
use pathcost_hist::Histogram1D;
use pathcost_roadnet::{EdgeId, Path, VertexId};
use pathcost_routing::RouteResult;
use pathcost_service::{
    LatencySnapshot, QueryOutcome, QueryRequest, QueryStats, RegimeId, ServiceError, ServiceStats,
};
use pathcost_traj::Timestamp;

/// Decodes one request object into a typed [`QueryRequest`].
pub fn decode_request(value: &Json) -> Result<QueryRequest, String> {
    let kind = value
        .get("type")
        .and_then(Json::as_str)
        .ok_or("missing string field \"type\"")?;
    match kind {
        "estimate" => Ok(QueryRequest::EstimateDistribution {
            path: decode_path(value.get("path"), "path")?,
            departure: decode_departure(value)?,
            regime: decode_regime(value)?,
        }),
        "prob" => Ok(QueryRequest::ProbWithinBudget {
            path: decode_path(value.get("path"), "path")?,
            departure: decode_departure(value)?,
            budget_s: decode_budget(value)?,
            regime: decode_regime(value)?,
        }),
        "rank" => {
            let candidates = value
                .get("candidates")
                .and_then(Json::as_array)
                .ok_or("missing array field \"candidates\"")?;
            if candidates.is_empty() {
                return Err("\"candidates\" must be non-empty".to_string());
            }
            Ok(QueryRequest::RankPaths {
                candidates: candidates
                    .iter()
                    .map(|c| decode_path(Some(c), "candidates"))
                    .collect::<Result<_, _>>()?,
                departure: decode_departure(value)?,
                budget_s: decode_budget(value)?,
                regime: decode_regime(value)?,
            })
        }
        "route" => {
            let k = match value.get("k") {
                None => 1,
                Some(k) => {
                    let k = k.as_u64().ok_or("\"k\" must be a positive integer")?;
                    if k == 0 {
                        return Err("\"k\" must be ≥ 1".to_string());
                    }
                    usize::try_from(k).map_err(|_| "\"k\" out of range".to_string())?
                }
            };
            Ok(QueryRequest::Route {
                source: VertexId(decode_vertex(value, "source")?),
                destination: VertexId(decode_vertex(value, "destination")?),
                departure: decode_departure(value)?,
                budget_s: decode_budget(value)?,
                k,
                regime: decode_regime(value)?,
            })
        }
        other => Err(format!(
            "unknown request type {other:?} (expected estimate | prob | rank | route)"
        )),
    }
}

/// Decodes the `POST /query/batch` envelope into its request list.
pub fn decode_batch(value: &Json) -> Result<Vec<QueryRequest>, String> {
    let requests = value
        .get("requests")
        .and_then(Json::as_array)
        .ok_or("missing array field \"requests\"")?;
    requests
        .iter()
        .enumerate()
        .map(|(i, r)| decode_request(r).map_err(|e| format!("requests[{i}]: {e}")))
        .collect()
}

fn decode_path(value: Option<&Json>, field: &str) -> Result<Path, String> {
    let edges = value
        .and_then(Json::as_array)
        .ok_or_else(|| format!("missing array field {field:?}"))?;
    if edges.is_empty() {
        return Err(format!("{field:?} must contain at least one edge id"));
    }
    let ids = edges
        .iter()
        .map(|e| {
            e.as_u64()
                .and_then(|id| u32::try_from(id).ok())
                .map(EdgeId)
                .ok_or_else(|| format!("{field:?} entries must be u32 edge ids"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Path::from_edges_unchecked(ids))
}

fn decode_departure(value: &Json) -> Result<Timestamp, String> {
    let s = value
        .get("departure_s")
        .and_then(Json::as_f64)
        .ok_or("missing number field \"departure_s\"")?;
    if s < 0.0 {
        return Err("\"departure_s\" must be ≥ 0".to_string());
    }
    Ok(Timestamp(s))
}

fn decode_budget(value: &Json) -> Result<f64, String> {
    let budget = value
        .get("budget_s")
        .and_then(Json::as_f64)
        .ok_or("missing number field \"budget_s\"")?;
    if budget <= 0.0 {
        return Err("\"budget_s\" must be > 0".to_string());
    }
    Ok(budget)
}

fn decode_regime(value: &Json) -> Result<RegimeId, String> {
    match value.get("regime") {
        None => Ok(RegimeId::ALL_TRAFFIC),
        Some(r) => r
            .as_u64()
            .and_then(|id| u16::try_from(id).ok())
            .map(RegimeId)
            .ok_or_else(|| "\"regime\" must be a u16 regime id".to_string()),
    }
}

fn decode_vertex(value: &Json, field: &str) -> Result<u32, String> {
    value
        .get(field)
        .and_then(Json::as_u64)
        .and_then(|id| u32::try_from(id).ok())
        .ok_or_else(|| format!("missing u32 field {field:?}"))
}

/// Encodes a successful outcome (payload + per-query stats), echoing the
/// request's non-global regime in the stats object.
pub fn encode_outcome_for(outcome: &QueryOutcome, regime: RegimeId) -> Json {
    let mut encoded = encode_outcome(outcome);
    if !regime.is_global() {
        if let Json::Object(fields) = &mut encoded {
            if let Some((_, Json::Object(stat_fields))) =
                fields.iter_mut().find(|(name, _)| name == "stats")
            {
                stat_fields.push(("regime".to_string(), Json::Number(f64::from(regime.0))));
            }
        }
    }
    encoded
}

/// Encodes a successful outcome (payload + per-query stats).
pub fn encode_outcome(outcome: &QueryOutcome) -> Json {
    use pathcost_service::QueryResponse;
    let mut fields = match &outcome.response {
        QueryResponse::Distribution(hist) => vec![
            ("type", Json::String("distribution".to_string())),
            ("distribution", encode_histogram(hist)),
        ],
        QueryResponse::Probability(p) => vec![
            ("type", Json::String("probability".to_string())),
            ("probability", Json::Number(*p)),
        ],
        QueryResponse::Ranking(ranking) => vec![
            ("type", Json::String("ranking".to_string())),
            (
                "ranking",
                Json::Array(
                    ranking
                        .iter()
                        .map(|r| {
                            Json::object(vec![
                                ("index", Json::Number(r.index as f64)),
                                ("probability", Json::Number(r.probability)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ],
        QueryResponse::Route(route) => vec![
            ("type", Json::String("route".to_string())),
            ("route", route.as_ref().map_or(Json::Null, encode_route)),
        ],
        QueryResponse::Routes(routes) => vec![
            ("type", Json::String("routes".to_string())),
            (
                "routes",
                Json::Array(routes.iter().map(encode_route).collect()),
            ),
        ],
    };
    fields.push(("stats", encode_query_stats(&outcome.stats)));
    Json::object(fields)
}

fn encode_histogram(hist: &Histogram1D) -> Json {
    Json::Array(
        hist.buckets()
            .iter()
            .zip(hist.probs())
            .map(|(bucket, &p)| {
                Json::object(vec![
                    ("lo", Json::Number(bucket.lo)),
                    ("hi", Json::Number(bucket.hi)),
                    ("p", Json::Number(p)),
                ])
            })
            .collect(),
    )
}

fn encode_route(route: &RouteResult) -> Json {
    Json::object(vec![
        (
            "path",
            Json::Array(
                route
                    .path
                    .edges()
                    .iter()
                    .map(|e| Json::Number(e.0 as f64))
                    .collect(),
            ),
        ),
        ("probability", Json::Number(route.probability)),
        (
            "evaluated_candidates",
            Json::Number(route.evaluated_candidates as f64),
        ),
        ("expansions", Json::Number(route.expansions as f64)),
    ])
}

fn encode_query_stats(stats: &QueryStats) -> Json {
    Json::object(vec![
        ("cache_hits", Json::Number(stats.cache_hits as f64)),
        ("cache_misses", Json::Number(stats.cache_misses as f64)),
        (
            "max_decomposition_depth",
            Json::Number(stats.max_decomposition_depth as f64),
        ),
        (
            "max_fallback_depth",
            Json::Number(stats.max_fallback_depth as f64),
        ),
        ("latency_us", Json::Number(stats.latency.as_micros() as f64)),
        ("degraded", Json::Bool(stats.degraded)),
    ])
}

/// The HTTP status a [`ServiceError`] maps to.
pub fn error_status(error: &ServiceError) -> (u16, &'static str) {
    match error {
        ServiceError::InvalidRequest(_) | ServiceError::RoadNet(_) => (400, "Bad Request"),
        ServiceError::Overloaded | ServiceError::ShuttingDown | ServiceError::Cancelled => {
            (503, "Service Unavailable")
        }
        // Early admission rejection while degraded: the client should back
        // off (the response carries `Retry-After`).
        ServiceError::Degraded => (429, "Too Many Requests"),
        ServiceError::DeadlineExceeded => (504, "Gateway Timeout"),
        ServiceError::Core(_) | ServiceError::Routing(_) | ServiceError::Internal(_) => {
            (500, "Internal Server Error")
        }
    }
}

/// Encodes an error body: `{"error": "..."}`.
pub fn encode_error(message: &str) -> Json {
    Json::object(vec![("error", Json::String(message.to_string()))])
}

fn encode_latency(latency: &LatencySnapshot) -> Json {
    Json::object(vec![
        ("count", Json::Number(latency.total() as f64)),
        ("p50_us", Json::Number(latency.p50().as_micros() as f64)),
        ("p99_us", Json::Number(latency.p99().as_micros() as f64)),
        ("max_us", Json::Number(latency.max().as_micros() as f64)),
    ])
}

/// Encodes the `/stats` payload: the engine's [`ServiceStats`] plus the
/// admission queue's gauges (end-to-end and queue-wait latency histograms,
/// current depth, degradation state), the worker-pool size and — when
/// persistence is configured — the same persistence block `/healthz`
/// carries. `/metrics` derives its series from these same snapshots, so the
/// two endpoints agree by construction.
pub fn encode_stats(
    stats: &ServiceStats,
    e2e: &LatencySnapshot,
    queue_wait: &LatencySnapshot,
    queue_depth: usize,
    degraded: bool,
    workers: usize,
    persistence: Option<Json>,
) -> Json {
    let mut fields = vec![
        (
            "estimate_queries",
            Json::Number(stats.estimate_queries as f64),
        ),
        (
            "probability_queries",
            Json::Number(stats.probability_queries as f64),
        ),
        ("rank_queries", Json::Number(stats.rank_queries as f64)),
        ("route_queries", Json::Number(stats.route_queries as f64)),
        ("errors", Json::Number(stats.errors as f64)),
        ("cache_hits", Json::Number(stats.cache_hits as f64)),
        ("cache_misses", Json::Number(stats.cache_misses as f64)),
        ("estimations", Json::Number(stats.estimations as f64)),
        ("batches", Json::Number(stats.batches as f64)),
        ("batch_requests", Json::Number(stats.batch_requests as f64)),
        (
            "batch_jobs_deduplicated",
            Json::Number(stats.batch_jobs_deduplicated as f64),
        ),
        ("shed_deadline", Json::Number(stats.shed_deadline as f64)),
        (
            "deadline_exceeded",
            Json::Number(stats.deadline_exceeded as f64),
        ),
        ("cancelled", Json::Number(stats.cancelled as f64)),
        (
            "degraded_answers",
            Json::Number(stats.degraded_answers as f64),
        ),
        (
            "rejected_degraded",
            Json::Number(stats.rejected_degraded as f64),
        ),
        (
            "regime_fallback",
            Json::Array(
                stats
                    .regime_fallback
                    .iter()
                    .map(|&n| Json::Number(n as f64))
                    .collect(),
            ),
        ),
        (
            "panicked_queries",
            Json::Number(stats.panicked_queries as f64),
        ),
        ("queue_depth", Json::Number(queue_depth as f64)),
        ("degraded", Json::Bool(degraded)),
        ("workers", Json::Number(workers as f64)),
        (
            "route_expansions",
            Json::Number(stats.route_expansions as f64),
        ),
        ("query_latency", encode_latency(&stats.latency)),
        ("latency_ok", encode_latency(&stats.latency_ok)),
        ("latency_failed", encode_latency(&stats.latency_failed)),
        ("latency_shed", encode_latency(&stats.latency_shed)),
        ("e2e_latency", encode_latency(e2e)),
        ("queue_wait", encode_latency(queue_wait)),
        (
            "ingest_publish_latency",
            encode_latency(&stats.ingest_publish_latency),
        ),
    ];
    if let Some(persistence) = persistence {
        fields.push(("persistence", persistence));
    }
    Json::object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn decodes_every_request_kind() {
        let estimate =
            json::parse(br#"{"type":"estimate","path":[1,2,3],"departure_s":100.5}"#).unwrap();
        match decode_request(&estimate).unwrap() {
            QueryRequest::EstimateDistribution {
                path,
                departure,
                regime,
            } => {
                assert_eq!(path.edges(), &[EdgeId(1), EdgeId(2), EdgeId(3)]);
                assert_eq!(departure.0, 100.5);
                assert_eq!(regime, RegimeId::ALL_TRAFFIC, "regime defaults to global");
            }
            other => panic!("wrong variant: {other:?}"),
        }

        let prob =
            json::parse(br#"{"type":"prob","path":[0],"departure_s":0,"budget_s":600}"#).unwrap();
        assert!(matches!(
            decode_request(&prob).unwrap(),
            QueryRequest::ProbWithinBudget { budget_s, .. } if budget_s == 600.0
        ));

        let rank = json::parse(
            br#"{"type":"rank","candidates":[[0,1],[2]],"departure_s":0,"budget_s":60}"#,
        )
        .unwrap();
        assert!(matches!(
            decode_request(&rank).unwrap(),
            QueryRequest::RankPaths { candidates, .. } if candidates.len() == 2
        ));

        let route = json::parse(
            br#"{"type":"route","source":4,"destination":7,"departure_s":0,"budget_s":900}"#,
        )
        .unwrap();
        assert!(matches!(
            decode_request(&route).unwrap(),
            QueryRequest::Route {
                source: VertexId(4),
                destination: VertexId(7),
                k: 1,
                ..
            }
        ));
    }

    #[test]
    fn decodes_and_echoes_the_regime_field() {
        let prob =
            json::parse(br#"{"type":"prob","path":[0],"departure_s":0,"budget_s":600,"regime":2}"#)
                .unwrap();
        assert_eq!(decode_request(&prob).unwrap().regime(), RegimeId(2));
        let bad = json::parse(
            br#"{"type":"prob","path":[0],"departure_s":0,"budget_s":600,"regime":-1}"#,
        )
        .unwrap();
        assert!(decode_request(&bad).unwrap_err().contains("regime"));

        // The stats echo: non-global regimes are stamped into the response,
        // regime 0 keeps the pre-regime wire format byte-identical.
        let outcome = QueryOutcome {
            response: pathcost_service::QueryResponse::Probability(0.5),
            stats: QueryStats::default(),
        };
        let global = encode_outcome_for(&outcome, RegimeId::ALL_TRAFFIC);
        assert_eq!(global.to_string(), encode_outcome(&outcome).to_string());
        assert!(global.get("stats").unwrap().get("regime").is_none());
        let tagged = encode_outcome_for(&outcome, RegimeId(2));
        assert_eq!(
            tagged.get("stats").unwrap().get("regime").unwrap().as_u64(),
            Some(2)
        );
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (doc, needle) in [
            (&br#"{"path":[1]}"#[..], "type"),
            (br#"{"type":"teleport"}"#, "unknown request type"),
            (br#"{"type":"estimate","path":[],"departure_s":0}"#, "at least one edge"),
            (br#"{"type":"estimate","path":[1.5],"departure_s":0}"#, "u32 edge ids"),
            (br#"{"type":"estimate","path":[1],"departure_s":-4}"#, "≥ 0"),
            (br#"{"type":"prob","path":[1],"departure_s":0,"budget_s":0}"#, "> 0"),
            (br#"{"type":"rank","candidates":[],"departure_s":0,"budget_s":5}"#, "non-empty"),
            (br#"{"type":"route","source":1,"departure_s":0,"budget_s":5}"#, "destination"),
            (
                br#"{"type":"route","source":1,"destination":2,"departure_s":0,"budget_s":5,"k":0}"#,
                "k",
            ),
        ] {
            let value = json::parse(doc).unwrap();
            let err = decode_request(&value).unwrap_err();
            assert!(
                err.contains(needle),
                "error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn batch_envelope_reports_the_failing_index() {
        let value = json::parse(
            br#"{"requests":[{"type":"estimate","path":[1],"departure_s":0},{"type":"bogus"}]}"#,
        )
        .unwrap();
        let err = decode_batch(&value).unwrap_err();
        assert!(err.starts_with("requests[1]:"), "{err}");
    }

    #[test]
    fn stats_payload_carries_both_latency_histograms() {
        let stats = ServiceStats::default();
        let e2e = LatencySnapshot::default();
        let queue_wait = LatencySnapshot::default();
        let encoded = encode_stats(&stats, &e2e, &queue_wait, 3, true, 8, None);
        assert_eq!(encoded.get("queue_depth").unwrap().as_u64(), Some(3));
        assert_eq!(encoded.get("degraded").unwrap(), &Json::Bool(true));
        assert_eq!(encoded.get("workers").unwrap().as_u64(), Some(8));
        assert!(encoded
            .get("query_latency")
            .unwrap()
            .get("p99_us")
            .is_some());
        assert!(encoded.get("e2e_latency").unwrap().get("p50_us").is_some());
        assert!(encoded.get("queue_wait").unwrap().get("p50_us").is_some());
        assert!(encoded.get("ingest_publish_latency").is_some());
        assert!(encoded.get("persistence").is_none());

        let persistence = Json::object(vec![("suspended", Json::Bool(false))]);
        let encoded = encode_stats(&stats, &e2e, &queue_wait, 0, false, 8, Some(persistence));
        assert!(encoded
            .get("persistence")
            .unwrap()
            .get("suspended")
            .is_some());
    }
}
