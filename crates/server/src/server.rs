//! The blocking TCP accept loop, connection handling and graceful shutdown.
//!
//! One OS thread per live connection (scoped, so connections may borrow the
//! engine), a shared [`AdmissionQueue`] batching requests across
//! connections, and one dispatcher thread draining that queue through
//! [`QueryEngine::execute_batch`]. The listener runs non-blocking so the
//! accept loop can poll the shutdown flag; connections poll it between
//! keep-alive requests via a short socket read timeout.
//!
//! Graceful shutdown ([`ShutdownHandle::shutdown`]):
//!
//! 1. the accept loop stops taking connections,
//! 2. the admission queue closes — new submissions fail with 503, but every
//!    already-admitted request is still executed and answered,
//! 3. idle keep-alive connections close on their next timeout tick, and
//! 4. [`Server::run`] joins every connection and the dispatcher before
//!    returning, so when it returns no request is in flight.

use crate::http::{self, HttpError, Limits};
use crate::json;
use crate::metrics::{self, ScrapeView, ServerObs};
use crate::wire;
use crate::ServerError;
use pathcost_obs::log as obslog;
use pathcost_obs::{next_trace_id, ActiveTrace, FinishedTrace, Level, Stage};
use pathcost_persist::PersistenceStatus;
use pathcost_service::{AdmissionConfig, AdmissionQueue, QueryEngine, RequestContext};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:8080"` (`:0` picks a free port).
    pub addr: String,
    /// Maximum concurrently served connections; excess connections receive
    /// an immediate 503 and are closed.
    pub max_connections: usize,
    /// Admission queue tuning (capacity bound, batch size, linger window).
    pub admission: AdmissionConfig,
    /// Socket read timeout. Doubles as the shutdown poll interval for idle
    /// keep-alive connections, so shutdown latency is bounded by it.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that stops reading its response can
    /// pin a connection thread in `write_all` for at most this long before
    /// the connection is closed.
    pub write_timeout: Duration,
    /// Deadline applied to requests that carry no `x-deadline-ms` header.
    /// `None` (the default) leaves such requests unbounded. Expired requests
    /// are shed in the admission queue and answered 504.
    pub default_deadline: Option<Duration>,
    /// HTTP parsing limits (request line / header / body sizes).
    pub limits: Limits,
    /// Shared persistence telemetry (`PersistentIngestor::status()` in
    /// `pathcost-live`). When set, `GET /healthz` reports snapshot age,
    /// journal length and the last recovery outcome, and `POST
    /// /admin/snapshot` flags a snapshot request for the ingest thread.
    pub persistence: Option<Arc<PersistenceStatus>>,
    /// Requests slower than this end-to-end are counted in
    /// `pathcost_slow_queries_total` and logged as a `slow_query` event with
    /// their per-stage span breakdown. `None` disables slow-query logging.
    pub slow_query_threshold: Option<Duration>,
    /// How many finished request traces `GET /debug/traces` retains.
    pub trace_ring_capacity: usize,
    /// Overrides the structured event log's level for the process when set
    /// (otherwise the `PATHCOST_LOG` environment variable / `info` applies).
    pub log_level: Option<Level>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            admission: AdmissionConfig::default(),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            default_deadline: None,
            limits: Limits::default(),
            persistence: None,
            slow_query_threshold: Some(Duration::from_millis(500)),
            trace_ring_capacity: 128,
            log_level: None,
        }
    }
}

/// Signals a running [`Server`] to stop accepting and drain. Cheap to clone
/// and safe to trigger from any thread (e.g. a ctrl-c handler or a test).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown; returns immediately. [`Server::run`] returns once
    /// in-flight work has drained.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A bound (but not yet serving) HTTP front-end.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address. The listener is non-blocking so the
    /// accept loop in [`run`](Self::run) can poll for shutdown.
    pub fn bind(config: ServerConfig) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually bound address (useful with port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ServerError> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle that stops the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Serves until [`ShutdownHandle::shutdown`] is called, then drains
    /// in-flight requests and returns. Blocks the calling thread.
    pub fn run(self, engine: &QueryEngine<'_>) {
        if let Some(level) = self.config.log_level {
            obslog::logger().set_level(level);
        }
        let addr = self
            .listener
            .local_addr()
            .map(|a| a.to_string())
            .unwrap_or_default();
        obslog::info(
            "server",
            "started",
            &[
                ("addr", addr.as_str().into()),
                ("max_connections", self.config.max_connections.into()),
            ],
        );
        let queue = AdmissionQueue::new(self.config.admission);
        let obs = ServerObs::new(&self.config);
        let active = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let dispatcher = scope.spawn(|| queue.dispatch(engine));
            while !self.shutdown.load(Ordering::Acquire) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if active.load(Ordering::Acquire) >= self.config.max_connections {
                            obs.connections_rejected.inc();
                            obslog::warn(
                                "server",
                                "connection_rejected",
                                &[("max_connections", self.config.max_connections.into())],
                            );
                            reject_over_capacity(stream);
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        obs.connections.add(1);
                        let conn = Connection {
                            engine,
                            queue: &queue,
                            config: &self.config,
                            shutdown: &self.shutdown,
                            obs: &obs,
                        };
                        let active = &active;
                        let connections = &obs.connections;
                        scope.spawn(move || {
                            conn.serve(stream);
                            active.fetch_sub(1, Ordering::AcqRel);
                            connections.sub(1);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // Stop admitting; the dispatcher drains what was admitted and
            // exits. Connection threads observe the flag on their next read
            // timeout and close; the scope joins them all.
            obslog::info("server", "shutdown_draining", &[]);
            queue.close();
            let _ = dispatcher.join();
        });
        obslog::info("server", "stopped", &[]);
    }
}

/// The `persistence` object of `GET /healthz`: last-recovery outcome (warm
/// restarts and cold boots are distinguishable), snapshot epoch/age and
/// journal length.
fn encode_persistence(status: &PersistenceStatus) -> json::Json {
    let snapshot_age_s = match status.snapshot_unix_ms() {
        0 => json::Json::Null,
        taken_ms => {
            let now_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            json::Json::Number(now_ms.saturating_sub(taken_ms) as f64 / 1000.0)
        }
    };
    json::Json::object(vec![
        (
            "recovery",
            json::Json::String(status.recovery_outcome().as_str().to_string()),
        ),
        (
            "recovered_snapshot_epoch",
            json::Json::Number(status.recovered_snapshot_epoch() as f64),
        ),
        (
            "replayed_records",
            json::Json::Number(status.replayed_records() as f64),
        ),
        (
            "corrupt_generations_skipped",
            json::Json::Number(status.corrupt_generations_skipped() as f64),
        ),
        (
            "snapshot_epoch",
            json::Json::Number(status.snapshot_epoch() as f64),
        ),
        ("snapshot_age_s", snapshot_age_s),
        (
            "snapshots_written",
            json::Json::Number(status.snapshots_written() as f64),
        ),
        (
            "journal_records",
            json::Json::Number(status.journal_records() as f64),
        ),
        (
            "journal_bytes",
            json::Json::Number(status.journal_bytes() as f64),
        ),
        ("suspended", json::Json::Bool(status.suspended())),
        (
            "suspensions",
            json::Json::Number(status.suspensions() as f64),
        ),
        ("io_retries", json::Json::Number(status.io_retries() as f64)),
    ])
}

/// Emits the `slow_query` event: total latency plus every recorded span, so
/// the log line alone answers "where did the time go".
fn log_slow_query(finished: &FinishedTrace) {
    let mut fields: Vec<(&str, obslog::Value)> = vec![
        ("trace_id", finished.id.as_str().into()),
        ("target", finished.target.as_str().into()),
        ("status", u64::from(finished.status).into()),
        ("total_us", finished.total_micros.into()),
    ];
    for stage in Stage::ALL {
        let micros = finished.stage(stage);
        if micros > 0 {
            fields.push((stage.name(), micros.into()));
        }
    }
    obslog::warn("server", "slow_query", &fields);
}

/// The `GET /debug/traces` payload: recently finished traces, newest first,
/// each with its per-stage span breakdown in microseconds.
fn encode_traces(traces: &[FinishedTrace]) -> json::Json {
    let items = traces
        .iter()
        .map(|t| {
            let spans = Stage::ALL
                .iter()
                .filter(|stage| t.stage(**stage) > 0)
                .map(|stage| (stage.name(), json::Json::Number(t.stage(*stage) as f64)))
                .collect();
            json::Json::object(vec![
                ("id", json::Json::String(t.id.clone())),
                ("target", json::Json::String(t.target.clone())),
                ("status", json::Json::Number(f64::from(t.status))),
                (
                    "started_unix_ms",
                    json::Json::Number(t.started_unix_ms as f64),
                ),
                ("total_us", json::Json::Number(t.total_micros as f64)),
                ("spans_us", json::Json::object(spans)),
            ])
        })
        .collect();
    json::Json::object(vec![("traces", json::Json::Array(items))])
}

/// Best-effort 503 for a connection over the concurrency cap.
fn reject_over_capacity(mut stream: TcpStream) {
    let body = wire::encode_error("connection limit reached").to_string();
    let _ = http::write_response_with(
        &mut stream,
        503,
        "Service Unavailable",
        &body,
        false,
        &[("retry-after", "1".to_string())],
    );
}

/// A submitted request's completion ticket paired with the regime it asked
/// for (echoed into the encoded response).
type SubmittedQuery = (pathcost_service::Ticket, pathcost_service::RegimeId);

/// Per-connection state (all borrowed from the serving scope).
struct Connection<'a, 'n> {
    engine: &'a QueryEngine<'n>,
    queue: &'a AdmissionQueue,
    config: &'a ServerConfig,
    shutdown: &'a AtomicBool,
    obs: &'a ServerObs,
}

impl Connection<'_, '_> {
    /// Serves keep-alive requests until close, error or shutdown.
    fn serve(&self, stream: TcpStream) {
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
            || stream
                .set_write_timeout(Some(self.config.write_timeout))
                .is_err()
        {
            return;
        }
        // Responses are written whole; Nagle only adds latency here.
        let _ = stream.set_nodelay(true);
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        loop {
            match http::read_request(&mut reader, &mut writer, &self.config.limits) {
                Ok(request) => {
                    // One trace per request: the inbound x-trace-id if the
                    // client sent a sane one, a minted id otherwise. The
                    // parse span runs from the first byte on the wire (idle
                    // keep-alive waiting excluded) to here — headers and
                    // body are read, decoding is attributed downstream.
                    let id = request.trace_id.clone().unwrap_or_else(next_trace_id);
                    let trace = Arc::new(ActiveTrace::start(id, request.target.clone()));
                    if let Some(received) = request.received {
                        trace.record(Stage::Parse, received.elapsed());
                    }
                    let outcome = self.respond(&mut writer, &request, &trace);
                    self.finish_trace(&trace, outcome.unwrap_or(0));
                    if outcome.is_err()
                        || !request.keep_alive
                        || self.shutdown.load(Ordering::Acquire)
                    {
                        return;
                    }
                }
                Err(HttpError::Idle) => {
                    // Nothing arrived within the read timeout: poll shutdown
                    // and keep waiting.
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(error) => {
                    // A mid-request disconnect/timeout or a parse error:
                    // answer when a status applies, then close.
                    if let Some((status, reason)) = error.status() {
                        let message = match &error {
                            HttpError::BadRequest(msg) => msg,
                            _ => reason,
                        };
                        let body = wire::encode_error(message).to_string();
                        let _ = http::write_response(&mut writer, status, reason, &body, false);
                        // The request may not have been consumed in full
                        // (e.g. an over-limit request line). Half-close and
                        // drain briefly so the close sends FIN, not RST —
                        // a reset would discard the response the peer is
                        // still reading.
                        let _ = writer.shutdown(std::net::Shutdown::Write);
                        let mut sink = [0u8; 4096];
                        for _ in 0..256 {
                            match std::io::Read::read(&mut reader, &mut sink) {
                                Ok(n) if n > 0 => {}
                                _ => break,
                            }
                        }
                    }
                    return;
                }
            }
        }
    }

    /// The deadline/cancellation context for one request: the client's
    /// `x-deadline-ms` header wins, else the server default, else unbounded.
    fn request_context(&self, request: &http::Request) -> RequestContext {
        let budget = request
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.config.default_deadline);
        RequestContext::with_deadline(budget)
    }

    /// Files a finished trace: status-class counters and per-stage
    /// histograms, the `/debug/traces` ring, and — over the threshold — the
    /// slow-query counter and a `slow_query` event with the span breakdown.
    fn finish_trace(&self, trace: &ActiveTrace, status: u16) {
        let finished = trace.finish(status);
        self.obs.observe_request(&finished);
        if let Some(threshold) = self.config.slow_query_threshold {
            let total = Duration::from_micros(finished.total_micros);
            if total >= threshold {
                self.obs.slow_queries.inc();
                log_slow_query(&finished);
            }
        }
        self.obs.traces.push(finished);
    }

    /// Routes one parsed request; `Ok` carries the status written,
    /// `Err(())` closes the connection.
    fn respond(
        &self,
        writer: &mut TcpStream,
        request: &http::Request,
        trace: &Arc<ActiveTrace>,
    ) -> Result<u16, ()> {
        let keep_alive = request.keep_alive;
        // Every response echoes the trace id; overload answers (503/429)
        // carry Retry-After so well-behaved clients back off instead of
        // hammering the queue. The write span wraps the socket write, and a
        // write timeout (client stopped reading) is counted.
        let write = |writer: &mut TcpStream, status: u16, reason: &str, body: String| {
            self.write_traced(
                writer,
                status,
                reason,
                "application/json",
                body,
                keep_alive,
                trace,
            )
        };
        match (request.method.as_str(), request.target.as_str()) {
            ("GET", "/healthz") => {
                let suspended = self
                    .config
                    .persistence
                    .as_deref()
                    .is_some_and(PersistenceStatus::suspended);
                let load_degraded = self.queue.degraded();
                let healthy = !suspended && !load_degraded;
                let mut reasons: Vec<&str> = Vec::new();
                if load_degraded {
                    reasons.push("load watermark breached (queue depth / e2e p99)");
                }
                if suspended {
                    reasons.push("persistence suspended after repeated IO failures");
                }
                let mut fields = vec![
                    (
                        "status",
                        json::Json::String(if healthy { "ok" } else { "degraded" }.to_string()),
                    ),
                    ("epoch", json::Json::Number(self.engine.epoch() as f64)),
                    ("degraded", json::Json::Bool(!healthy)),
                    (
                        "version",
                        json::Json::String(env!("CARGO_PKG_VERSION").to_string()),
                    ),
                    (
                        "uptime_s",
                        json::Json::Number(self.obs.started.elapsed().as_secs_f64()),
                    ),
                ];
                if !reasons.is_empty() {
                    fields.push(("reason", json::Json::String(reasons.join("; "))));
                }
                if let Some(status) = &self.config.persistence {
                    fields.push(("persistence", encode_persistence(status)));
                }
                let body = json::Json::object(fields).to_string();
                if healthy {
                    write(writer, 200, "OK", body)
                } else {
                    write(writer, 503, "Service Unavailable", body)
                }
            }
            ("POST", "/admin/snapshot") => match &self.config.persistence {
                Some(status) => {
                    // The flag is honoured by the ingest-owning thread after
                    // its next published epoch — accepted, not yet done.
                    status.request_snapshot();
                    let body = json::Json::object(vec![
                        (
                            "status",
                            json::Json::String("snapshot-requested".to_string()),
                        ),
                        (
                            "snapshot_epoch",
                            json::Json::Number(status.snapshot_epoch() as f64),
                        ),
                    ]);
                    write(writer, 202, "Accepted", body.to_string())
                }
                None => {
                    let body = wire::encode_error("persistence not configured").to_string();
                    write(writer, 503, "Service Unavailable", body)
                }
            },
            ("GET", "/stats") => {
                let stats = self.engine.stats();
                let body = wire::encode_stats(
                    &stats,
                    &self.queue.latency(),
                    &self.queue.queue_wait(),
                    self.queue.len(),
                    self.queue.degraded(),
                    self.engine.worker_count(),
                    self.config.persistence.as_deref().map(encode_persistence),
                );
                write(writer, 200, "OK", body.to_string())
            }
            ("GET", "/metrics") => {
                let stats = self.engine.stats();
                let shards = self.engine.cache().per_shard_counters();
                let regimes = self.engine.regime_stats();
                let page = metrics::render(
                    self.obs,
                    &ScrapeView {
                        stats: &stats,
                        shards: &shards,
                        epoch: self.engine.epoch(),
                        queue_depth: self.queue.len(),
                        queue_degraded: self.queue.degraded(),
                        e2e: &self.queue.latency(),
                        queue_wait: &self.queue.queue_wait(),
                        regimes: &regimes,
                        persistence: self.config.persistence.as_deref(),
                    },
                );
                self.write_traced(
                    writer,
                    200,
                    "OK",
                    "text/plain; version=0.0.4",
                    page,
                    keep_alive,
                    trace,
                )
            }
            ("GET", "/debug/traces") => {
                let body = encode_traces(&self.obs.traces.recent());
                write(writer, 200, "OK", body.to_string())
            }
            ("POST", "/query") => {
                let context = self.request_context(request).with_trace(Arc::clone(trace));
                match self.parse_and_submit_one(&request.body, context) {
                    Ok((ticket, regime)) => match ticket.wait() {
                        Ok(outcome) => {
                            let started = Instant::now();
                            let body = wire::encode_outcome_for(&outcome, regime).to_string();
                            trace.record(Stage::Serialize, started.elapsed());
                            write(writer, 200, "OK", body)
                        }
                        Err(error) => {
                            let (status, reason) = wire::error_status(&error);
                            let body = wire::encode_error(&error.to_string()).to_string();
                            write(writer, status, reason, body)
                        }
                    },
                    Err(response) => {
                        let (status, reason, body) = response;
                        write(writer, status, reason, body)
                    }
                }
            }
            ("POST", "/query/batch") => {
                let context = self.request_context(request).with_trace(Arc::clone(trace));
                match self.parse_and_submit_batch(&request.body, context) {
                    Ok(tickets) => {
                        let results: Vec<json::Json> = tickets
                            .into_iter()
                            .map(|(ticket, regime)| match ticket.wait() {
                                Ok(outcome) => wire::encode_outcome_for(&outcome, regime),
                                Err(error) => wire::encode_error(&error.to_string()),
                            })
                            .collect();
                        let started = Instant::now();
                        let body =
                            json::Json::object(vec![("results", json::Json::Array(results))])
                                .to_string();
                        trace.record(Stage::Serialize, started.elapsed());
                        write(writer, 200, "OK", body)
                    }
                    Err((status, reason, body)) => write(writer, status, reason, body),
                }
            }
            (
                _,
                "/query" | "/query/batch" | "/healthz" | "/stats" | "/admin/snapshot" | "/metrics"
                | "/debug/traces",
            ) => {
                let body = wire::encode_error("method not allowed").to_string();
                write(writer, 405, "Method Not Allowed", body)
            }
            _ => {
                let body = wire::encode_error("no such endpoint").to_string();
                write(writer, 404, "Not Found", body)
            }
        }
    }

    /// Writes one response with the trace id echoed, Retry-After on
    /// overload statuses, the write span recorded, and write timeouts
    /// counted. Returns the status written; `Err(())` closes the connection.
    #[allow(clippy::too_many_arguments)]
    fn write_traced(
        &self,
        writer: &mut TcpStream,
        status: u16,
        reason: &str,
        content_type: &str,
        body: String,
        keep_alive: bool,
        trace: &Arc<ActiveTrace>,
    ) -> Result<u16, ()> {
        let mut extra: Vec<(&str, String)> = vec![("x-trace-id", trace.id().to_string())];
        if status == 503 || status == 429 {
            extra.push(("retry-after", "1".to_string()));
        }
        let started = Instant::now();
        let result = http::write_response_full(
            writer,
            status,
            reason,
            content_type,
            &body,
            keep_alive,
            &extra,
        );
        trace.record(Stage::Write, started.elapsed());
        match result {
            Ok(()) => Ok(status),
            Err(e) => {
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) {
                    self.obs.write_timeouts.inc();
                    obslog::warn(
                        "server",
                        "write_timeout",
                        &[
                            ("trace_id", trace.id().into()),
                            ("status", u64::from(status).into()),
                        ],
                    );
                }
                Err(())
            }
        }
    }

    /// Parses and admits one `/query` body, returning the ticket together
    /// with the request's regime (echoed into the response); the error is a
    /// ready-to-send `(status, reason, body)` triple.
    fn parse_and_submit_one(
        &self,
        body: &[u8],
        context: RequestContext,
    ) -> Result<SubmittedQuery, (u16, &'static str, String)> {
        let value = json::parse(body).map_err(|e| {
            (
                400,
                "Bad Request",
                wire::encode_error(&e.to_string()).to_string(),
            )
        })?;
        let request = wire::decode_request(&value)
            .map_err(|e| (400, "Bad Request", wire::encode_error(&e).to_string()))?;
        let regime = request.regime();
        self.queue
            .submit_with_context(request, context)
            .map(|ticket| (ticket, regime))
            .map_err(|e| self.submit_error(e))
    }

    fn parse_and_submit_batch(
        &self,
        body: &[u8],
        context: RequestContext,
    ) -> Result<Vec<SubmittedQuery>, (u16, &'static str, String)> {
        let value = json::parse(body).map_err(|e| {
            (
                400,
                "Bad Request",
                wire::encode_error(&e.to_string()).to_string(),
            )
        })?;
        let requests = wire::decode_batch(&value)
            .map_err(|e| (400, "Bad Request", wire::encode_error(&e).to_string()))?;
        if requests.is_empty() {
            return Err((
                400,
                "Bad Request",
                wire::encode_error("\"requests\" must be non-empty").to_string(),
            ));
        }
        let regimes: Vec<pathcost_service::RegimeId> =
            requests.iter().map(|r| r.regime()).collect();
        self.queue
            .submit_many_with_context(requests, context)
            .map(|tickets| tickets.into_iter().zip(regimes).collect())
            .map_err(|e| self.submit_error(e))
    }

    /// Maps an admission failure to its wire response, counting degraded
    /// early rejections (`ServiceStats::rejected_degraded`, answered 429 +
    /// `Retry-After`).
    fn submit_error(&self, e: pathcost_service::ServiceError) -> (u16, &'static str, String) {
        if matches!(e, pathcost_service::ServiceError::Degraded) {
            self.engine.record_rejected_degraded();
        }
        let (status, reason) = wire::error_status(&e);
        (
            status,
            reason,
            wire::encode_error(&e.to_string()).to_string(),
        )
    }
}
