//! The blocking TCP accept loop, connection handling and graceful shutdown.
//!
//! One OS thread per live connection (scoped, so connections may borrow the
//! engine), a shared [`AdmissionQueue`] batching requests across
//! connections, and one dispatcher thread draining that queue through
//! [`QueryEngine::execute_batch`]. The listener runs non-blocking so the
//! accept loop can poll the shutdown flag; connections poll it between
//! keep-alive requests via a short socket read timeout.
//!
//! Graceful shutdown ([`ShutdownHandle::shutdown`]):
//!
//! 1. the accept loop stops taking connections,
//! 2. the admission queue closes — new submissions fail with 503, but every
//!    already-admitted request is still executed and answered,
//! 3. idle keep-alive connections close on their next timeout tick, and
//! 4. [`Server::run`] joins every connection and the dispatcher before
//!    returning, so when it returns no request is in flight.

use crate::http::{self, HttpError, Limits};
use crate::json;
use crate::wire;
use crate::ServerError;
use pathcost_persist::PersistenceStatus;
use pathcost_service::{
    AdmissionConfig, AdmissionQueue, QueryEngine, RequestContext, ServiceError,
};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `"127.0.0.1:8080"` (`:0` picks a free port).
    pub addr: String,
    /// Maximum concurrently served connections; excess connections receive
    /// an immediate 503 and are closed.
    pub max_connections: usize,
    /// Admission queue tuning (capacity bound, batch size, linger window).
    pub admission: AdmissionConfig,
    /// Socket read timeout. Doubles as the shutdown poll interval for idle
    /// keep-alive connections, so shutdown latency is bounded by it.
    pub read_timeout: Duration,
    /// Socket write timeout: a client that stops reading its response can
    /// pin a connection thread in `write_all` for at most this long before
    /// the connection is closed.
    pub write_timeout: Duration,
    /// Deadline applied to requests that carry no `x-deadline-ms` header.
    /// `None` (the default) leaves such requests unbounded. Expired requests
    /// are shed in the admission queue and answered 504.
    pub default_deadline: Option<Duration>,
    /// HTTP parsing limits (request line / header / body sizes).
    pub limits: Limits,
    /// Shared persistence telemetry (`PersistentIngestor::status()` in
    /// `pathcost-live`). When set, `GET /healthz` reports snapshot age,
    /// journal length and the last recovery outcome, and `POST
    /// /admin/snapshot` flags a snapshot request for the ingest thread.
    pub persistence: Option<Arc<PersistenceStatus>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 256,
            admission: AdmissionConfig::default(),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(2),
            default_deadline: None,
            limits: Limits::default(),
            persistence: None,
        }
    }
}

/// Signals a running [`Server`] to stop accepting and drain. Cheap to clone
/// and safe to trigger from any thread (e.g. a ctrl-c handler or a test).
#[derive(Clone)]
pub struct ShutdownHandle {
    flag: Arc<AtomicBool>,
}

impl ShutdownHandle {
    /// Requests shutdown; returns immediately. [`Server::run`] returns once
    /// in-flight work has drained.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A bound (but not yet serving) HTTP front-end.
pub struct Server {
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Binds the configured address. The listener is non-blocking so the
    /// accept loop in [`run`](Self::run) can poll for shutdown.
    pub fn bind(config: ServerConfig) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The actually bound address (useful with port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, ServerError> {
        Ok(self.listener.local_addr()?)
    }

    /// A handle that stops the server from another thread.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            flag: Arc::clone(&self.shutdown),
        }
    }

    /// Serves until [`ShutdownHandle::shutdown`] is called, then drains
    /// in-flight requests and returns. Blocks the calling thread.
    pub fn run(self, engine: &QueryEngine<'_>) {
        let queue = AdmissionQueue::new(self.config.admission);
        let active = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let dispatcher = scope.spawn(|| queue.dispatch(engine));
            while !self.shutdown.load(Ordering::Acquire) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if active.load(Ordering::Acquire) >= self.config.max_connections {
                            reject_over_capacity(stream);
                            continue;
                        }
                        active.fetch_add(1, Ordering::AcqRel);
                        let conn = Connection {
                            engine,
                            queue: &queue,
                            config: &self.config,
                            shutdown: &self.shutdown,
                        };
                        let active = &active;
                        scope.spawn(move || {
                            conn.serve(stream);
                            active.fetch_sub(1, Ordering::AcqRel);
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
            // Stop admitting; the dispatcher drains what was admitted and
            // exits. Connection threads observe the flag on their next read
            // timeout and close; the scope joins them all.
            queue.close();
            let _ = dispatcher.join();
        });
    }
}

/// The `persistence` object of `GET /healthz`: last-recovery outcome (warm
/// restarts and cold boots are distinguishable), snapshot epoch/age and
/// journal length.
fn encode_persistence(status: &PersistenceStatus) -> json::Json {
    let snapshot_age_s = match status.snapshot_unix_ms() {
        0 => json::Json::Null,
        taken_ms => {
            let now_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            json::Json::Number(now_ms.saturating_sub(taken_ms) as f64 / 1000.0)
        }
    };
    json::Json::object(vec![
        (
            "recovery",
            json::Json::String(status.recovery_outcome().as_str().to_string()),
        ),
        (
            "recovered_snapshot_epoch",
            json::Json::Number(status.recovered_snapshot_epoch() as f64),
        ),
        (
            "replayed_records",
            json::Json::Number(status.replayed_records() as f64),
        ),
        (
            "corrupt_generations_skipped",
            json::Json::Number(status.corrupt_generations_skipped() as f64),
        ),
        (
            "snapshot_epoch",
            json::Json::Number(status.snapshot_epoch() as f64),
        ),
        ("snapshot_age_s", snapshot_age_s),
        (
            "snapshots_written",
            json::Json::Number(status.snapshots_written() as f64),
        ),
        (
            "journal_records",
            json::Json::Number(status.journal_records() as f64),
        ),
        (
            "journal_bytes",
            json::Json::Number(status.journal_bytes() as f64),
        ),
        ("suspended", json::Json::Bool(status.suspended())),
        (
            "suspensions",
            json::Json::Number(status.suspensions() as f64),
        ),
        ("io_retries", json::Json::Number(status.io_retries() as f64)),
    ])
}

/// Best-effort 503 for a connection over the concurrency cap.
fn reject_over_capacity(mut stream: TcpStream) {
    let body = wire::encode_error("connection limit reached").to_string();
    let _ = http::write_response_with(
        &mut stream,
        503,
        "Service Unavailable",
        &body,
        false,
        &[("retry-after", "1".to_string())],
    );
}

/// Per-connection state (all borrowed from the serving scope).
struct Connection<'a, 'n> {
    engine: &'a QueryEngine<'n>,
    queue: &'a AdmissionQueue,
    config: &'a ServerConfig,
    shutdown: &'a AtomicBool,
}

impl Connection<'_, '_> {
    /// Serves keep-alive requests until close, error or shutdown.
    fn serve(&self, stream: TcpStream) {
        if stream
            .set_read_timeout(Some(self.config.read_timeout))
            .is_err()
            || stream
                .set_write_timeout(Some(self.config.write_timeout))
                .is_err()
        {
            return;
        }
        // Responses are written whole; Nagle only adds latency here.
        let _ = stream.set_nodelay(true);
        let mut writer = match stream.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        let mut reader = BufReader::new(stream);
        loop {
            match http::read_request(&mut reader, &mut writer, &self.config.limits) {
                Ok(request) => {
                    let responded = self.respond(&mut writer, &request).is_ok();
                    if !responded || !request.keep_alive || self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(HttpError::Idle) => {
                    // Nothing arrived within the read timeout: poll shutdown
                    // and keep waiting.
                    if self.shutdown.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(error) => {
                    // A mid-request disconnect/timeout or a parse error:
                    // answer when a status applies, then close.
                    if let Some((status, reason)) = error.status() {
                        let message = match &error {
                            HttpError::BadRequest(msg) => msg,
                            _ => reason,
                        };
                        let body = wire::encode_error(message).to_string();
                        let _ = http::write_response(&mut writer, status, reason, &body, false);
                        // The request may not have been consumed in full
                        // (e.g. an over-limit request line). Half-close and
                        // drain briefly so the close sends FIN, not RST —
                        // a reset would discard the response the peer is
                        // still reading.
                        let _ = writer.shutdown(std::net::Shutdown::Write);
                        let mut sink = [0u8; 4096];
                        for _ in 0..256 {
                            match std::io::Read::read(&mut reader, &mut sink) {
                                Ok(n) if n > 0 => {}
                                _ => break,
                            }
                        }
                    }
                    return;
                }
            }
        }
    }

    /// The deadline/cancellation context for one request: the client's
    /// `x-deadline-ms` header wins, else the server default, else unbounded.
    fn request_context(&self, request: &http::Request) -> RequestContext {
        let budget = request
            .deadline_ms
            .map(Duration::from_millis)
            .or(self.config.default_deadline);
        RequestContext::with_deadline(budget)
    }

    /// Routes one parsed request; `Err(())` closes the connection.
    fn respond(&self, writer: &mut TcpStream, request: &http::Request) -> Result<(), ()> {
        let keep_alive = request.keep_alive;
        // Overload answers (503/429) carry Retry-After so well-behaved
        // clients back off instead of hammering the queue.
        let write = |writer: &mut TcpStream, status: u16, reason: &str, body: String| {
            let extra: Vec<(&str, String)> = if status == 503 || status == 429 {
                vec![("retry-after", "1".to_string())]
            } else {
                Vec::new()
            };
            http::write_response_with(writer, status, reason, &body, keep_alive, &extra)
                .map_err(|_| ())
        };
        match (request.method.as_str(), request.target.as_str()) {
            ("GET", "/healthz") => {
                let suspended = self
                    .config
                    .persistence
                    .as_deref()
                    .is_some_and(PersistenceStatus::suspended);
                let load_degraded = self.queue.degraded();
                let healthy = !suspended && !load_degraded;
                let mut reasons: Vec<&str> = Vec::new();
                if load_degraded {
                    reasons.push("load watermark breached (queue depth / e2e p99)");
                }
                if suspended {
                    reasons.push("persistence suspended after repeated IO failures");
                }
                let mut fields = vec![
                    (
                        "status",
                        json::Json::String(if healthy { "ok" } else { "degraded" }.to_string()),
                    ),
                    ("epoch", json::Json::Number(self.engine.epoch() as f64)),
                    ("degraded", json::Json::Bool(!healthy)),
                ];
                if !reasons.is_empty() {
                    fields.push(("reason", json::Json::String(reasons.join("; "))));
                }
                if let Some(status) = &self.config.persistence {
                    fields.push(("persistence", encode_persistence(status)));
                }
                let body = json::Json::object(fields).to_string();
                if healthy {
                    write(writer, 200, "OK", body)
                } else {
                    write(writer, 503, "Service Unavailable", body)
                }
            }
            ("POST", "/admin/snapshot") => match &self.config.persistence {
                Some(status) => {
                    // The flag is honoured by the ingest-owning thread after
                    // its next published epoch — accepted, not yet done.
                    status.request_snapshot();
                    let body = json::Json::object(vec![
                        (
                            "status",
                            json::Json::String("snapshot-requested".to_string()),
                        ),
                        (
                            "snapshot_epoch",
                            json::Json::Number(status.snapshot_epoch() as f64),
                        ),
                    ]);
                    write(writer, 202, "Accepted", body.to_string())
                }
                None => {
                    let body = wire::encode_error("persistence not configured").to_string();
                    write(writer, 503, "Service Unavailable", body)
                }
            },
            ("GET", "/stats") => {
                let stats = self.engine.stats();
                let body = wire::encode_stats(&stats, &self.queue.latency(), self.queue.len());
                write(writer, 200, "OK", body.to_string())
            }
            ("POST", "/query") => {
                match self.parse_and_submit_one(&request.body, self.request_context(request)) {
                    Ok(ticket) => match ticket.wait() {
                        Ok(outcome) => write(
                            writer,
                            200,
                            "OK",
                            wire::encode_outcome(&outcome).to_string(),
                        ),
                        Err(error) => self.write_service_error(writer, &error, keep_alive),
                    },
                    Err(response) => {
                        let (status, reason, body) = response;
                        write(writer, status, reason, body)
                    }
                }
            }
            ("POST", "/query/batch") => match self
                .parse_and_submit_batch(&request.body, self.request_context(request))
            {
                Ok(tickets) => {
                    let results: Vec<json::Json> = tickets
                        .into_iter()
                        .map(|ticket| match ticket.wait() {
                            Ok(outcome) => wire::encode_outcome(&outcome),
                            Err(error) => wire::encode_error(&error.to_string()),
                        })
                        .collect();
                    let body = json::Json::object(vec![("results", json::Json::Array(results))]);
                    write(writer, 200, "OK", body.to_string())
                }
                Err((status, reason, body)) => write(writer, status, reason, body),
            },
            (_, "/query" | "/query/batch" | "/healthz" | "/stats" | "/admin/snapshot") => {
                let body = wire::encode_error("method not allowed").to_string();
                write(writer, 405, "Method Not Allowed", body)
            }
            _ => {
                let body = wire::encode_error("no such endpoint").to_string();
                write(writer, 404, "Not Found", body)
            }
        }
    }

    fn write_service_error(
        &self,
        writer: &mut TcpStream,
        error: &ServiceError,
        keep_alive: bool,
    ) -> Result<(), ()> {
        let (status, reason) = wire::error_status(error);
        let body = wire::encode_error(&error.to_string()).to_string();
        let extra: Vec<(&str, String)> = if status == 503 || status == 429 {
            vec![("retry-after", "1".to_string())]
        } else {
            Vec::new()
        };
        http::write_response_with(writer, status, reason, &body, keep_alive, &extra).map_err(|_| ())
    }

    /// Parses and admits one `/query` body; the error is a ready-to-send
    /// `(status, reason, body)` triple.
    fn parse_and_submit_one(
        &self,
        body: &[u8],
        context: RequestContext,
    ) -> Result<pathcost_service::Ticket, (u16, &'static str, String)> {
        let value = json::parse(body).map_err(|e| {
            (
                400,
                "Bad Request",
                wire::encode_error(&e.to_string()).to_string(),
            )
        })?;
        let request = wire::decode_request(&value)
            .map_err(|e| (400, "Bad Request", wire::encode_error(&e).to_string()))?;
        self.queue
            .submit_with_context(request, context)
            .map_err(|e| {
                let (status, reason) = wire::error_status(&e);
                (
                    status,
                    reason,
                    wire::encode_error(&e.to_string()).to_string(),
                )
            })
    }

    fn parse_and_submit_batch(
        &self,
        body: &[u8],
        context: RequestContext,
    ) -> Result<Vec<pathcost_service::Ticket>, (u16, &'static str, String)> {
        let value = json::parse(body).map_err(|e| {
            (
                400,
                "Bad Request",
                wire::encode_error(&e.to_string()).to_string(),
            )
        })?;
        let requests = wire::decode_batch(&value)
            .map_err(|e| (400, "Bad Request", wire::encode_error(&e).to_string()))?;
        if requests.is_empty() {
            return Err((
                400,
                "Bad Request",
                wire::encode_error("\"requests\" must be non-empty").to_string(),
            ));
        }
        self.queue
            .submit_many_with_context(requests, context)
            .map_err(|e| {
                let (status, reason) = wire::error_status(&e);
                (
                    status,
                    reason,
                    wire::encode_error(&e.to_string()).to_string(),
                )
            })
    }
}
