//! Hand-rolled JSON tree, parser and writer.
//!
//! The workspace runs offline: the vendored `serde` / `serde_derive` crates
//! are no-op shims (see `vendor/README.md`), so the wire format cannot lean
//! on derived (de)serialisers. This module is the actual serialisation
//! layer: a small [`Json`] value tree, a recursive-descent parser with a
//! depth limit, and a deterministic writer. It covers the full JSON grammar
//! (nested values, escapes, `\uXXXX` with surrogate pairs, scientific
//! notation) — the *API surface* is what is deliberately minimal, not the
//! format support.
//!
//! Numbers are `f64` throughout, which is exact for every integer the wire
//! format carries (edge ids, vertex ids, counters up to 2⁵³).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered so output is deterministic.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) if n.is_finite() => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractional parts and
    /// anything above 2⁵³, where `f64` stops being exact).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > 9_007_199_254_740_992.0 {
            return None;
        }
        Some(n as u64)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Convenience constructor for an object.
    pub fn object(fields: Vec<(&str, Json)>) -> Json {
        Json::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(n) => {
                // JSON has no NaN/Infinity; emit null rather than garbage.
                if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    /// Serialises the value to a compact JSON string (so `.to_string()`
    /// yields the wire form).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where and why parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Maximum nesting depth the parser accepts; beyond this a document is
/// rejected instead of risking a recursion-driven stack overflow on a
/// hostile payload.
pub const MAX_DEPTH: usize = 64;

/// Parses one complete JSON document (rejecting trailing garbage).
pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
    let mut parser = Parser { input, pos: 0 };
    parser.skip_whitespace();
    let value = parser.parse_value(0)?;
    parser.skip_whitespace();
    if parser.pos != parser.input.len() {
        return Err(parser.err("trailing characters after JSON document"));
    }
    Ok(value)
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("document nested too deeply"));
        }
        match self.peek() {
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(Json::String(self.parse_string()?)),
            Some(b't') => self.parse_literal(b"true", Json::Bool(true)),
            Some(b'f') => self.parse_literal(b"false", Json::Bool(false)),
            Some(b'n') => self.parse_literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, literal: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(literal) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_whitespace();
            let value = self.parse_value(depth + 1)?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Object(fields)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value(depth + 1)?);
            self.skip_whitespace();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate in string"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let scalar = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                            char::from_u32(scalar)
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    let slice = self
                        .input
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            value = value * 16 + digit;
        }
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.input[start..self.pos]).expect("number bytes are ASCII");
        let n: f64 = text.parse().map_err(|_| self.err("number out of range"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Number(n))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc2..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"type":"route","ids":[1,2,3],"p":0.25,"nested":{"ok":true,"none":null},"s":"a\"b\\c\nd"}"#;
        let value = parse(text.as_bytes()).unwrap();
        assert_eq!(value.get("type").unwrap().as_str(), Some("route"));
        assert_eq!(value.get("p").unwrap().as_f64(), Some(0.25));
        assert_eq!(value.get("ids").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            value.get("nested").unwrap().get("ok").unwrap().as_bool(),
            Some(true)
        );
        let reparsed = parse(value.to_string().as_bytes()).unwrap();
        assert_eq!(reparsed, value);
    }

    #[test]
    fn parses_escapes_and_surrogate_pairs() {
        let value = parse(br#""\u00e9\u20ac\ud83d\ude00\t""#).unwrap();
        assert_eq!(value.as_str(), Some("é€😀\t"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"{\"a\":}",
            b"[1,2,]",
            b"\"unterminated",
            b"01",
            b"1.e5",
            b"nul",
            b"{} extra",
            b"\"\\ud800\"",
            b"[1] [2]",
            &[b'"', 0x01, b'"'],
        ] {
            assert!(parse(bad).is_err(), "{:?} should fail", bad);
        }
    }

    #[test]
    fn rejects_absurd_nesting() {
        let mut doc = Vec::new();
        doc.extend(std::iter::repeat_n(b'[', 100));
        doc.extend(std::iter::repeat_n(b']', 100));
        assert!(parse(&doc).is_err());
    }

    #[test]
    fn integers_survive_the_f64_representation() {
        let value = parse(b"9007199254740992").unwrap();
        assert_eq!(value.as_u64(), Some(9_007_199_254_740_992));
        assert_eq!(parse(b"1.5").unwrap().as_u64(), None);
        assert_eq!(parse(b"-1").unwrap().as_u64(), None);
    }
}
