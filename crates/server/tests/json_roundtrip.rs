//! Round-trip property tests for the hand-rolled JSON layer.
//!
//! The invariant under test is `parse ∘ write = id` on the [`Json`] value
//! tree: any tree the writer can emit must parse back bit-identically
//! (numbers compared via `f64::to_bits`, so `-0.0` and subnormals count).
//! The vendored proptest shim has no recursive strategies, so trees are
//! grown by a deterministic SplitMix64 generator seeded from a drawn `u64`.

use pathcost_server::json::{self, Json, MAX_DEPTH};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Deterministic value generator
// ---------------------------------------------------------------------------

struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// A finite `f64`, biased toward values that stress shortest-form
    /// printing: exact integers, powers of ten, subnormals, and raw bit
    /// patterns (re-rolled until finite).
    fn number(&mut self) -> f64 {
        const EDGE: &[f64] = &[
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.5,
            0.1,
            5e-324,            // smallest positive subnormal
            f64::MIN_POSITIVE, // smallest positive normal
            f64::MAX,
            -f64::MAX,
            f64::EPSILON,
            1e300,
            -1e-300,
            9_007_199_254_740_992.0, // 2^53
            0.1 + 0.2,               // classic non-terminating binary fraction
            std::f64::consts::PI,
        ];
        match self.below(4) {
            0 => EDGE[self.below(EDGE.len() as u64) as usize],
            1 => self.next() as i32 as f64,
            2 => (self.next() as i64 as f64) / 1000.0,
            _ => loop {
                let candidate = f64::from_bits(self.next());
                if candidate.is_finite() {
                    break candidate;
                }
            },
        }
    }

    /// A string mixing ASCII, escapes, control characters, multi-byte
    /// UTF-8 and non-BMP scalars (which the parser accepts both raw and as
    /// surrogate-pair escapes).
    fn string(&mut self) -> String {
        const PALETTE: &[char] = &[
            'a',
            'Z',
            '0',
            ' ',
            '"',
            '\\',
            '/',
            '\n',
            '\r',
            '\t',
            '\u{08}',
            '\u{0c}',
            '\u{00}',
            '\u{01}',
            '\u{1f}',
            'é',
            'ß',
            '中',
            '\u{2028}',
            '😀',
            '🚗',
            '\u{10FFFF}',
        ];
        let len = self.below(12) as usize;
        (0..len)
            .map(|_| PALETTE[self.below(PALETTE.len() as u64) as usize])
            .collect()
    }

    /// A JSON tree of depth at most `depth`.
    fn value(&mut self, depth: u32) -> Json {
        let leaf_only = depth == 0;
        match self.below(if leaf_only { 4 } else { 6 }) {
            0 => Json::Null,
            1 => Json::Bool(self.next() & 1 == 0),
            2 => Json::Number(self.number()),
            3 => Json::String(self.string()),
            4 => {
                let n = self.below(4) as usize;
                Json::Array((0..n).map(|_| self.value(depth - 1)).collect())
            }
            _ => {
                let n = self.below(4) as usize;
                Json::Object(
                    (0..n)
                        .map(|_| (self.string(), self.value(depth - 1)))
                        .collect(),
                )
            }
        }
    }
}

/// Structural equality with bit-exact numbers (`PartialEq` on [`Json`] uses
/// `f64 ==`, which conflates `-0.0` with `0.0`).
fn eq_bits(a: &Json, b: &Json) -> bool {
    match (a, b) {
        (Json::Null, Json::Null) => true,
        (Json::Bool(x), Json::Bool(y)) => x == y,
        (Json::Number(x), Json::Number(y)) => x.to_bits() == y.to_bits(),
        (Json::String(x), Json::String(y)) => x == y,
        (Json::Array(x), Json::Array(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(l, r)| eq_bits(l, r))
        }
        (Json::Object(x), Json::Object(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((kl, vl), (kr, vr))| kl == kr && eq_bits(vl, vr))
        }
        _ => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// parse(write(v)) reproduces v bit-identically for arbitrary trees.
    #[test]
    fn parse_inverts_write(seed in 0u64..u64::MAX, depth in 0u32..5) {
        let value = Gen::new(seed).value(depth);
        let wire = value.to_string();
        let reparsed = json::parse(wire.as_bytes())
            .unwrap_or_else(|e| panic!("writer output failed to parse: {e}\nwire: {wire}"));
        prop_assert!(
            eq_bits(&value, &reparsed),
            "round trip diverged\nwire: {wire}\nbefore: {value:?}\nafter: {reparsed:?}"
        );
    }

    /// The writer is a fixpoint: write(parse(write(v))) == write(v), so the
    /// wire form is canonical after one pass.
    #[test]
    fn write_is_idempotent_through_parse(seed in 0u64..u64::MAX) {
        let value = Gen::new(seed).value(4);
        let first = value.to_string();
        let second = json::parse(first.as_bytes()).expect("valid").to_string();
        prop_assert_eq!(&first, &second);
    }

    /// Every finite f64 survives the Number round trip bit-exactly
    /// (Rust's `{}` formatting is shortest-round-trip).
    #[test]
    fn numbers_round_trip_bit_exactly(bits in 0u64..u64::MAX) {
        let n = f64::from_bits(bits);
        prop_assume!(n.is_finite());
        let wire = Json::Number(n).to_string();
        let back = json::parse(wire.as_bytes()).expect("number parses");
        match back {
            Json::Number(m) => {
                prop_assert!(n.to_bits() == m.to_bits(), "bits diverged via wire: {}", wire)
            }
            other => prop_assert!(false, "expected number, got {:?} from {}", other, wire),
        }
    }
}

// ---------------------------------------------------------------------------
// Pinned edge cases
// ---------------------------------------------------------------------------

#[test]
fn shortest_f64_edge_cases_round_trip() {
    for &n in &[
        5e-324,
        f64::MIN_POSITIVE,
        f64::MAX,
        -f64::MAX,
        f64::EPSILON,
        -0.0,
        0.1 + 0.2,
        1e300,
        9_007_199_254_740_993.0, // 2^53 + 1 rounds to 2^53; still round-trips
    ] {
        let wire = Json::Number(n).to_string();
        let back = json::parse(wire.as_bytes()).expect("parses");
        assert!(
            matches!(back, Json::Number(m) if m.to_bits() == n.to_bits()),
            "{n:?} via {wire:?} -> {back:?}"
        );
    }
    // Negative zero keeps its sign through the wire form.
    assert_eq!(Json::Number(-0.0).to_string(), "-0");
}

#[test]
fn non_finite_numbers_write_as_null() {
    for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::Number(n).to_string(), "null");
    }
}

#[test]
fn surrogate_pair_escapes_decode_and_round_trip() {
    // 😀 is the surrogate pair for U+1F600 (grinning face);
    // the parser must combine the pair into one scalar.
    let parsed = json::parse(br#""\ud83d\ude00""#).expect("surrogate pair parses");
    assert_eq!(parsed, Json::String("\u{1F600}".to_string()));
    // The writer emits the scalar raw; re-parsing still matches.
    let wire = parsed.to_string();
    assert_eq!(wire, "\"\u{1F600}\"");
    assert_eq!(
        json::parse(wire.as_bytes()).expect("raw emoji parses"),
        parsed
    );

    // Highest scalar expressible via surrogates.
    let parsed = json::parse(br#""\udbff\udfff""#).expect("U+10FFFF parses");
    assert_eq!(parsed, Json::String("\u{10FFFF}".to_string()));

    // Lone high surrogate, lone low surrogate, and a high surrogate
    // followed by a non-surrogate escape are all malformed.
    assert!(json::parse(br#""\ud83d""#).is_err());
    assert!(json::parse(br#""\ude00""#).is_err());
    assert!(json::parse(br#""\ud83dA""#).is_err());
}

#[test]
fn control_characters_escape_and_round_trip() {
    let s: String = (0u32..0x20).map(|c| char::from_u32(c).unwrap()).collect();
    let value = Json::String(s);
    let wire = value.to_string();
    // No raw control bytes on the wire.
    assert!(
        wire.bytes().all(|b| b >= 0x20),
        "raw control byte in {wire:?}"
    );
    assert_eq!(json::parse(wire.as_bytes()).expect("parses"), value);
    // Raw (unescaped) control characters are rejected by the parser.
    assert!(json::parse(b"\"\x01\"").is_err());
}

#[test]
fn depth_cap_boundary_is_exact() {
    let nest = |k: usize| format!("{}{}", "[".repeat(k), "]".repeat(k));
    // Find the first rejected nesting level.
    let boundary = (1..MAX_DEPTH * 2 + 4)
        .find(|&k| json::parse(nest(k).as_bytes()).is_err())
        .expect("a depth cap exists");
    assert!(
        boundary > MAX_DEPTH,
        "depth cap triggered at {boundary}, below MAX_DEPTH={MAX_DEPTH}"
    );
    assert!(json::parse(nest(boundary - 1).as_bytes()).is_ok());
    assert!(json::parse(nest(boundary).as_bytes()).is_err());

    // A writable tree at the deepest accepted level still round-trips.
    let mut deep = Json::Bool(true);
    for _ in 0..boundary - 2 {
        deep = Json::Array(vec![deep]);
    }
    let wire = deep.to_string();
    assert_eq!(
        json::parse(wire.as_bytes()).expect("deepest tree parses"),
        deep
    );

    // Objects hit the same cap. Their innermost `null` costs one extra
    // level versus an empty array, so the boundary sits one lower.
    let nest_obj = |k: usize| format!("{}null{}", "{\"k\":".repeat(k), "}".repeat(k));
    let obj_boundary = (1..MAX_DEPTH * 2 + 4)
        .find(|&k| json::parse(nest_obj(k).as_bytes()).is_err())
        .expect("a depth cap exists for objects");
    assert_eq!(obj_boundary, boundary - 1);
    assert!(json::parse(nest_obj(obj_boundary - 1).as_bytes()).is_ok());
}
