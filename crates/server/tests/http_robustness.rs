//! HTTP-layer robustness over real sockets: malformed request lines,
//! truncated bodies, oversized payloads and mid-request disconnects must map
//! to 4xx responses or clean closes — and must never take down the worker
//! pool: after every abuse case the same server instance keeps answering.

mod common;

use common::{get, post, send_raw, serve_with};
use pathcost_core::{HybridConfig, HybridGraph};
use pathcost_server::{Json, Limits, ServerConfig};
use pathcost_service::{QueryEngine, ServiceConfig};
use pathcost_traj::DatasetPreset;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn test_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(50),
        limits: Limits {
            max_body: 16 * 1024,
            ..Limits::default()
        },
        ..ServerConfig::default()
    }
}

/// A valid `/query` body for the fixture, discovered from its store.
fn valid_query(store: &pathcost_traj::TrajectoryStore) -> String {
    let (path, _) = store.frequent_paths(2, 10, None)[0].clone();
    let departure = store.occurrences_on(&path)[0].entry_time;
    let edges: Vec<String> = path.edges().iter().map(|e| e.0.to_string()).collect();
    format!(
        r#"{{"type":"estimate","path":[{}],"departure_s":{}}}"#,
        edges.join(","),
        departure.0
    )
}

#[test]
fn hostile_inputs_get_4xx_and_the_server_keeps_serving() {
    let (net, store) = DatasetPreset::tiny(7).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let good_body = valid_query(&store);

    serve_with(&engine, test_config(), |addr| {
        // Malformed request lines.
        assert_eq!(send_raw(addr, b"BROKEN\r\n\r\n").0, 400);
        assert_eq!(send_raw(addr, b"GET /x SPDY/9\r\n\r\n").0, 400);
        assert_eq!(send_raw(addr, b"GET noslash HTTP/1.1\r\n\r\n").0, 400);

        // Malformed headers and framing.
        assert_eq!(
            send_raw(addr, b"GET /healthz HTTP/1.1\r\nbad header\r\n\r\n").0,
            400
        );
        assert_eq!(
            send_raw(addr, b"POST /query HTTP/1.1\r\nContent-Length: moo\r\n\r\n").0,
            400
        );
        assert_eq!(
            send_raw(
                addr,
                b"POST /query HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
            .0,
            501
        );

        // Oversized request line and payload.
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(20_000));
        assert_eq!(send_raw(addr, long.as_bytes()).0, 414);
        let huge = b"POST /query HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        assert_eq!(send_raw(addr, huge).0, 413);

        // Truncated body: declared 50 bytes, delivered 3, then half-close.
        let (status, _) = send_raw(
            addr,
            b"POST /query HTTP/1.1\r\nContent-Length: 50\r\n\r\nabc",
        );
        assert_eq!(status, 408);

        // Mid-request disconnect with no bytes to read back at all.
        drop(TcpStream::connect(addr).unwrap());
        let mut partial = TcpStream::connect(addr).unwrap();
        partial.write_all(b"POST /que").unwrap();
        drop(partial);

        // Bad JSON and bad request shapes on a healthy connection.
        assert_eq!(post(addr, "/query", "not json").0, 400);
        assert_eq!(post(addr, "/query", r#"{"type":"bogus"}"#).0, 400);
        assert_eq!(
            post(
                addr,
                "/query",
                r#"{"type":"estimate","path":[],"departure_s":0}"#
            )
            .0,
            400
        );
        assert_eq!(post(addr, "/query/batch", r#"{"requests":[]}"#).0, 400);

        // Unknown endpoint / wrong method.
        assert_eq!(get(addr, "/nope").0, 404);
        assert_eq!(get(addr, "/query").0, 405);
        assert_eq!(post(addr, "/healthz", "{}").0, 405);

        // After all of that, the same server still answers real queries.
        let (status, body) = post(addr, "/query", &good_body);
        assert_eq!(status, 200, "server must survive hostile inputs: {body}");
        let parsed = pathcost_server::json::parse(body.as_bytes()).unwrap();
        assert_eq!(
            parsed.get("type").and_then(Json::as_str),
            Some("distribution")
        );
        assert!(!parsed
            .get("distribution")
            .and_then(Json::as_array)
            .unwrap()
            .is_empty());
    });
}

#[test]
fn healthz_and_stats_report_epoch_and_latency() {
    let (net, store) = DatasetPreset::tiny(11).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let good_body = valid_query(&store);

    serve_with(&engine, test_config(), |addr| {
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let health = pathcost_server::json::parse(body.as_bytes()).unwrap();
        assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(health.get("epoch").and_then(Json::as_u64), Some(0));

        assert_eq!(post(addr, "/query", &good_body).0, 200);

        let (status, body) = get(addr, "/stats");
        assert_eq!(status, 200);
        let stats = pathcost_server::json::parse(body.as_bytes()).unwrap();
        assert_eq!(
            stats.get("estimate_queries").and_then(Json::as_u64),
            Some(1)
        );
        let e2e = stats.get("e2e_latency").unwrap();
        assert_eq!(e2e.get("count").and_then(Json::as_u64), Some(1));
        assert!(e2e.get("p99_us").and_then(Json::as_u64).unwrap() >= 1);
        assert!(
            stats
                .get("query_latency")
                .unwrap()
                .get("max_us")
                .and_then(Json::as_u64)
                .unwrap()
                >= 1
        );
    });
}

#[test]
fn oversized_batch_is_rejected_by_the_admission_bound() {
    let (net, store) = DatasetPreset::tiny(13).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let one = valid_query(&store);

    let mut config = test_config();
    config.admission.capacity = 4;
    serve_with(&engine, config, |addr| {
        // 5 requests into a capacity-4 queue: all-or-nothing 503.
        let batch = format!(
            r#"{{"requests":[{}]}}"#,
            std::iter::repeat_n(one.as_str(), 5)
                .collect::<Vec<_>>()
                .join(",")
        );
        let (status, body) = post(addr, "/query/batch", &batch);
        assert_eq!(status, 503, "{body}");

        // A fitting batch still succeeds afterwards (nothing leaked into the
        // queue from the rejected submission).
        let batch = format!(
            r#"{{"requests":[{}]}}"#,
            std::iter::repeat_n(one.as_str(), 4)
                .collect::<Vec<_>>()
                .join(",")
        );
        let (status, body) = post(addr, "/query/batch", &batch);
        assert_eq!(status, 200, "{body}");
        let parsed = pathcost_server::json::parse(body.as_bytes()).unwrap();
        assert_eq!(
            parsed
                .get("results")
                .and_then(Json::as_array)
                .unwrap()
                .len(),
            4
        );
    });
}

/// Writes `raw`, half-closes, and returns the whole response text (status
/// line + headers + body) so tests can assert on response *headers*.
fn send_raw_full(addr: std::net::SocketAddr, raw: &[u8]) -> String {
    use std::io::Read;
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(raw).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response
}

#[test]
fn slowloris_drip_times_out_with_408_and_the_server_keeps_serving() {
    let (net, store) = DatasetPreset::tiny(17).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let good_body = valid_query(&store);

    serve_with(&engine, test_config(), |addr| {
        // A client that starts a request line and then stalls: the 50ms read
        // timeout fires mid-request, which must be answered 408 and closed —
        // not held open indefinitely and not treated as an idle keep-alive.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /he").unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(
            response.starts_with("HTTP/1.1 408 "),
            "stalled request must get 408, got: {response:?}"
        );

        // Same for a body that drips one byte and stalls.
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /query HTTP/1.1\r\nContent-Length: 40\r\n\r\n{")
            .unwrap();
        std::thread::sleep(Duration::from_millis(200));
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 408 "), "{response:?}");

        // The worker pool is unharmed: a healthy request still succeeds.
        assert_eq!(post(addr, "/query", &good_body).0, 200);
    });
}

#[test]
fn unread_responses_and_mid_response_disconnects_do_not_wedge_the_server() {
    let (net, store) = DatasetPreset::tiny(19).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let good_body = valid_query(&store);

    let config = ServerConfig {
        // Tight write timeout: a peer that stops reading can pin a thread in
        // write_all for at most this long.
        write_timeout: Duration::from_millis(100),
        ..test_config()
    };
    serve_with(&engine, config, |addr| {
        // Slow writer: submits a query and never reads the response, keeping
        // the connection open well past the write timeout.
        let mut lazy = TcpStream::connect(addr).unwrap();
        write!(
            lazy,
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{good_body}",
            good_body.len()
        )
        .unwrap();
        std::thread::sleep(Duration::from_millis(300));

        // Mid-response disconnect: the peer vanishes right after sending a
        // complete request; the server's response write hits a dead socket.
        let mut rude = TcpStream::connect(addr).unwrap();
        write!(
            rude,
            "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{good_body}",
            good_body.len()
        )
        .unwrap();
        drop(rude);

        // Neither client wedged the server: fresh connections are answered,
        // and serve_with's graceful shutdown (after this closure) must still
        // join every connection thread — `lazy` is still attached here.
        let (status, body) = post(addr, "/query", &good_body);
        assert_eq!(status, 200, "{body}");
        drop(lazy);
    });
}

#[test]
fn expired_deadlines_get_504_and_overload_answers_carry_retry_after() {
    let (net, store) = DatasetPreset::tiny(23).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let good_body = valid_query(&store);

    let mut config = test_config();
    config.admission.capacity = 2;
    serve_with(&engine, config, |addr| {
        // An already-expired client deadline: the queue sheds the request
        // before evaluation and the server answers 504.
        let raw = format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nx-deadline-ms: 0\r\nContent-Length: {}\r\n\r\n{good_body}",
            good_body.len()
        );
        let (status, _) = send_raw(addr, raw.as_bytes());
        assert_eq!(status, 504);

        // A generous deadline still succeeds.
        let raw = format!(
            "POST /query HTTP/1.1\r\nHost: t\r\nx-deadline-ms: 30000\r\nContent-Length: {}\r\n\r\n{good_body}",
            good_body.len()
        );
        assert_eq!(send_raw(addr, raw.as_bytes()).0, 200);

        // An unparseable deadline is the client's fault.
        let raw =
            "POST /query HTTP/1.1\r\nHost: t\r\nx-deadline-ms: soon\r\nContent-Length: 2\r\n\r\n{}";
        assert_eq!(send_raw(addr, raw.as_bytes()).0, 400);

        // The shed shows up in the stats counters.
        let (status, body) = get(addr, "/stats");
        assert_eq!(status, 200);
        let stats = pathcost_server::json::parse(body.as_bytes()).unwrap();
        assert!(stats.get("shed_deadline").and_then(Json::as_u64).unwrap() >= 1);
        assert!(
            stats
                .get("deadline_exceeded")
                .and_then(Json::as_u64)
                .unwrap()
                >= 1
        );
        assert!(
            stats
                .get("latency_shed")
                .unwrap()
                .get("count")
                .and_then(Json::as_u64)
                .unwrap()
                >= 1
        );

        // Overload (batch over the capacity-2 queue bound) is 503 *with*
        // Retry-After, so well-behaved clients back off.
        let batch = format!(
            r#"{{"requests":[{}]}}"#,
            std::iter::repeat_n(good_body.as_str(), 3)
                .collect::<Vec<_>>()
                .join(",")
        );
        let raw = format!(
            "POST /query/batch HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{batch}",
            batch.len()
        );
        let response = send_raw_full(addr, raw.as_bytes());
        assert!(response.starts_with("HTTP/1.1 503 "), "{response:?}");
        assert!(
            response.contains("retry-after: 1\r\n"),
            "503 must carry Retry-After: {response:?}"
        );
    });
}

#[test]
fn healthz_reports_persistence_and_admin_snapshot_flags_a_request() {
    let (net, store) = DatasetPreset::tiny(13).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let status = Arc::new(pathcost_persist::PersistenceStatus::new());
    status.record_recovery(pathcost_persist::RecoveryOutcome::Warm, 7, 3, 1);
    let now_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64;
    status.record_snapshot(9, now_ms);
    status.record_journal(4, 2048);
    engine.resume_epoch(9);

    let config = ServerConfig {
        persistence: Some(status.clone()),
        ..test_config()
    };
    serve_with(&engine, config, |addr| {
        let (code, body) = get(addr, "/healthz");
        assert_eq!(code, 200);
        let health = pathcost_server::json::parse(body.as_bytes()).unwrap();
        // The engine was resumed at the recovered epoch, not restarted at 0.
        assert_eq!(health.get("epoch").and_then(Json::as_u64), Some(9));
        let p = health.get("persistence").expect("persistence object");
        assert_eq!(p.get("recovery").and_then(Json::as_str), Some("warm"));
        assert_eq!(
            p.get("recovered_snapshot_epoch").and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(p.get("replayed_records").and_then(Json::as_u64), Some(3));
        assert_eq!(
            p.get("corrupt_generations_skipped").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(p.get("snapshot_epoch").and_then(Json::as_u64), Some(9));
        assert_eq!(p.get("journal_records").and_then(Json::as_u64), Some(4));
        assert_eq!(p.get("journal_bytes").and_then(Json::as_u64), Some(2048));
        let age = p
            .get("snapshot_age_s")
            .and_then(Json::as_f64)
            .expect("a fresh snapshot has a numeric age");
        assert!((0.0..60.0).contains(&age), "age {age} out of range");

        // The admin endpoint flags a request for the ingest thread.
        assert!(!status.take_snapshot_request());
        let (code, body) = post(addr, "/admin/snapshot", "");
        assert_eq!(code, 202, "body: {body}");
        let ack = pathcost_server::json::parse(body.as_bytes()).unwrap();
        assert_eq!(
            ack.get("status").and_then(Json::as_str),
            Some("snapshot-requested")
        );
        assert!(status.take_snapshot_request(), "flag must be set");

        // Wrong method on a known path is 405, not 404.
        assert_eq!(get(addr, "/admin/snapshot").0, 405);
    });

    // Without persistence configured: no healthz object, 503 on admin.
    serve_with(&engine, test_config(), |addr| {
        let (_, body) = get(addr, "/healthz");
        let health = pathcost_server::json::parse(body.as_bytes()).unwrap();
        assert!(health.get("persistence").is_none());
        assert_eq!(post(addr, "/admin/snapshot", "").0, 503);
    });
}
