//! Shared socket-level helpers for the server integration tests.
//!
//! Each integration-test binary compiles its own copy, and not every binary
//! uses every helper.
#![allow(dead_code)]

use pathcost_server::{Server, ServerConfig};
use pathcost_service::QueryEngine;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Boots `engine` behind a server on an ephemeral port, runs `f` against it,
/// then shuts down gracefully (panicking if shutdown hangs the scope).
pub fn serve_with(engine: &QueryEngine<'_>, config: ServerConfig, f: impl FnOnce(SocketAddr)) {
    let server = Server::bind(config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(engine));
        // Shut the server down even when `f` panics (an assertion failure),
        // otherwise the scope would deadlock joining the serving thread.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(addr)));
        handle.shutdown();
        serving.join().expect("server thread");
        if let Err(panic) = result {
            std::panic::resume_unwind(panic);
        }
    });
}

/// One-shot exchange: write `raw`, half-close, read everything until the
/// server closes. Returns the status code and the body (empty when the
/// server closed without responding).
pub fn send_raw(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(raw).expect("write request");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    parse_response(&response)
}

fn parse_response(response: &str) -> (u16, String) {
    if response.is_empty() {
        return (0, String::new());
    }
    let status = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Reads exactly one `Content-Length`-framed response from a keep-alive
/// connection.
pub fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// Sends one request on an existing keep-alive connection and reads the
/// response.
pub fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    target: &str,
    body: &str,
) -> (u16, String) {
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    stream.flush().expect("flush");
    read_response(reader)
}

/// Convenience one-shot POST with `Connection: close`.
pub fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    send_raw(addr, raw.as_bytes())
}

/// Convenience one-shot GET with `Connection: close`.
pub fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n");
    send_raw(addr, raw.as_bytes())
}
