//! End-to-end correctness of the serving stack under concurrency: responses
//! through sockets + admission queue + persistent worker pool must be
//! bit-identical to direct [`QueryEngine`] calls, stay valid while a live
//! ingest/retire epoch lands mid-flight, and graceful shutdown must drain
//! without deadlocking.

mod common;

use common::{get, post, roundtrip, serve_with};
use pathcost_core::{HybridConfig, HybridGraph, PathWeightFunction};
use pathcost_live::LiveIngestor;
use pathcost_server::{wire, Json, ServerConfig};
use pathcost_service::{QueryEngine, QueryRequest, ServiceConfig};
use pathcost_traj::{DatasetPreset, MatchedTrajectory, TrajectoryStore};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn test_config() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(50),
        ..ServerConfig::default()
    }
}

/// `(wire body, typed request)` pairs covering estimate and prob queries.
fn workload(store: &TrajectoryStore, n: usize) -> Vec<(String, QueryRequest)> {
    let mut out = Vec::new();
    for (i, (path, _)) in store.frequent_paths(2, 5, None).into_iter().enumerate() {
        let departure = store.occurrences_on(&path)[0].entry_time;
        let edges: Vec<String> = path.edges().iter().map(|e| e.0.to_string()).collect();
        if i % 2 == 0 {
            out.push((
                format!(
                    r#"{{"type":"estimate","path":[{}],"departure_s":{}}}"#,
                    edges.join(","),
                    departure.0
                ),
                QueryRequest::EstimateDistribution {
                    path: path.clone(),
                    departure,
                    regime: pathcost_service::RegimeId::ALL_TRAFFIC,
                },
            ));
        } else {
            out.push((
                format!(
                    r#"{{"type":"prob","path":[{}],"departure_s":{},"budget_s":600}}"#,
                    edges.join(","),
                    departure.0
                ),
                QueryRequest::ProbWithinBudget {
                    path: path.clone(),
                    departure,
                    budget_s: 600.0,
                    regime: pathcost_service::RegimeId::ALL_TRAFFIC,
                },
            ));
        }
        if out.len() == n {
            break;
        }
    }
    assert!(out.len() >= 2, "fixture needs frequent paths");
    out
}

/// The response payload (type + distribution/probability), with the
/// per-query stats stripped: those legitimately differ between a cache-miss
/// direct call and a cache-hit served call.
fn payload_of(body: &str) -> Json {
    let parsed = pathcost_server::json::parse(body.as_bytes()).expect("valid response JSON");
    match parsed {
        Json::Object(fields) => {
            Json::Object(fields.into_iter().filter(|(k, _)| k != "stats").collect())
        }
        other => other,
    }
}

#[test]
fn concurrent_socket_clients_get_engine_identical_responses() {
    let (net, store) = DatasetPreset::tiny(7).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let requests = workload(&store, 6);

    // Ground truth straight from the engine, encoded through the same wire
    // layer the server uses — so equality below is bit-identical JSON.
    let expected: Vec<Json> = requests
        .iter()
        .map(|(_, request)| {
            let outcome = engine.execute(request).unwrap();
            payload_of(&wire::encode_outcome(&outcome).to_string())
        })
        .collect();

    serve_with(&engine, test_config(), |addr| {
        std::thread::scope(|scope| {
            for client in 0..8 {
                let requests = &requests;
                let expected = &expected;
                scope.spawn(move || {
                    // Each client holds one keep-alive connection and walks
                    // the workload from a different offset.
                    let mut stream = TcpStream::connect(addr).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    for round in 0..3 {
                        for i in 0..requests.len() {
                            let idx = (client + round + i) % requests.len();
                            let (status, body) = roundtrip(
                                &mut stream,
                                &mut reader,
                                "POST",
                                "/query",
                                &requests[idx].0,
                            );
                            assert_eq!(status, 200, "client {client}: {body}");
                            assert_eq!(
                                payload_of(&body),
                                expected[idx],
                                "served response must be bit-identical to a direct call"
                            );
                        }
                    }
                });
            }
        });
    });
}

#[test]
fn batch_endpoint_matches_direct_batch_execution() {
    let (net, store) = DatasetPreset::tiny(9).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let requests = workload(&store, 4);

    let direct: Vec<Json> = engine
        .execute_batch(&requests.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>())
        .into_iter()
        .map(|result| payload_of(&wire::encode_outcome(&result.unwrap()).to_string()))
        .collect();

    serve_with(&engine, test_config(), |addr| {
        let batch = format!(
            r#"{{"requests":[{}]}}"#,
            requests
                .iter()
                .map(|(body, _)| body.as_str())
                .collect::<Vec<_>>()
                .join(",")
        );
        let (status, body) = post(addr, "/query/batch", &batch);
        assert_eq!(status, 200, "{body}");
        let parsed = pathcost_server::json::parse(body.as_bytes()).unwrap();
        let results = parsed.get("results").and_then(Json::as_array).unwrap();
        assert_eq!(results.len(), direct.len());
        for (served, expected) in results.iter().zip(&direct) {
            assert_eq!(&payload_of(&served.to_string()), expected);
        }
    });
}

#[test]
fn live_epoch_lands_mid_flight_without_breaking_responses() {
    let (net, full) = DatasetPreset::tiny(31).materialise().unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * 95 / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();
    assert!(!rest.is_empty());

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let graph = HybridGraph::from_parts(&net, weights.clone(), cfg.clone());
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let mut ingestor = LiveIngestor::from_instantiated(&net, base.clone(), weights, cfg).unwrap();
    let requests = workload(&base, 4);

    serve_with(&engine, test_config(), |addr| {
        std::thread::scope(|scope| {
            // Socket load: every response must be well-formed and 200,
            // whichever epoch answers it.
            let clients: Vec<_> = (0..4)
                .map(|client| {
                    let requests = &requests;
                    scope.spawn(move || {
                        let mut stream = TcpStream::connect(addr).unwrap();
                        let mut reader = BufReader::new(stream.try_clone().unwrap());
                        for i in 0..30 {
                            let (status, body) = roundtrip(
                                &mut stream,
                                &mut reader,
                                "POST",
                                "/query",
                                &requests[(client + i) % requests.len()].0,
                            );
                            assert_eq!(status, 200, "{body}");
                            let parsed = pathcost_server::json::parse(body.as_bytes()).unwrap();
                            assert!(parsed.get("type").is_some());
                        }
                    })
                })
                .collect();

            // Meanwhile: an ingest epoch and a TTL retirement epoch land.
            let update = ingestor.ingest(rest.clone()).unwrap();
            engine.apply_update(update).unwrap();
            let cutoff = base.start_time_at_percentile(10).unwrap();
            let update = ingestor.retire_before(cutoff).unwrap();
            engine.apply_update(update).unwrap();

            for client in clients {
                client.join().unwrap();
            }
        });

        // The epoch advanced while serving, and the server reports it.
        let (status, body) = get(addr, "/healthz");
        assert_eq!(status, 200);
        let health = pathcost_server::json::parse(body.as_bytes()).unwrap();
        assert_eq!(health.get("epoch").and_then(Json::as_u64), Some(2));
    });
}

#[test]
fn graceful_shutdown_drains_in_flight_requests() {
    let (net, store) = DatasetPreset::tiny(17).materialise().unwrap();
    let graph = HybridGraph::build(&net, &store, HybridConfig::default()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let requests = workload(&store, 4);

    // serve_with itself shuts down after `f` returns and joins the server
    // thread — a deadlock would hang this test. Drive traffic right up to
    // the shutdown edge: clients race requests while the closure returns.
    serve_with(&engine, test_config(), |addr| {
        std::thread::scope(|scope| {
            for client in 0..4 {
                let requests = &requests;
                scope.spawn(move || {
                    for i in 0..10 {
                        let (status, body) =
                            post(addr, "/query", &requests[(client + i) % requests.len()].0);
                        assert_eq!(status, 200, "{body}");
                    }
                });
            }
        });
    });
    // After run() returned, the engine is fully quiescent and reusable.
    let outcome = engine.execute(&requests[0].1).unwrap();
    assert!(outcome.response.distribution().is_some() || outcome.response.probability().is_some());
}
