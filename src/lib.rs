//! # pathcost
//!
//! Facade crate re-exporting the whole hybrid-graph path cost distribution
//! estimation system (Dai, Yang, Guo, Jensen, Hu — *Path Cost Distribution
//! Estimation Using Trajectory Data*, PVLDB 10(3), 2016).
//!
//! The individual crates are:
//!
//! * [`roadnet`] — road-network graph, path algebra, synthetic generators,
//! * [`traj`] — GPS trajectories, traffic simulation, map matching, storage,
//! * [`hist`] — histograms (1-D, N-D), V-Optimal, Auto bucket selection,
//!   KL divergence, entropy, convolution,
//! * [`core`] — the hybrid graph itself: path weight function, coarsest
//!   decomposition, joint and marginal cost-distribution estimation, baselines,
//! * [`routing`] — deterministic and stochastic routing on top of the
//!   estimators,
//! * [`service`] — the concurrent query-serving layer: a typed request/
//!   response interface over a shared hybrid graph (published as swappable
//!   epoch snapshots), a sharded LRU distribution cache keyed by
//!   `(path, departure interval)` with targeted invalidation, a batch
//!   executor that deduplicates shared estimation work across a scoped
//!   worker pool, and per-query/service-level metrics,
//! * [`live`] — online trajectory ingestion: delta-indexed store appends,
//!   dirty-key tracking, selective re-derivation of exactly the changed
//!   weight-function variables, and versioned epoch publishing feeding the
//!   service layer's dependency-indexed cache invalidation,
//! * [`persist`] — crash-safe persistence: a versioned, checksummed
//!   snapshot format for the trajectory store and weight function (atomic
//!   temp-file + fsync + rename publication, two retained generations),
//!   an append-only ingest journal with torn-tail truncation, and the
//!   recovery machinery that loads the latest valid snapshot and replays
//!   post-snapshot journal records bit-identically,
//! * [`server`] — a blocking HTTP/1.1 network front-end over plain
//!   `std::net` sockets (hand-rolled request parsing and JSON wire format;
//!   the vendored serde is a no-op shim), batching concurrent connections
//!   through a bounded admission queue into the service layer's persistent
//!   worker pool, with load-shedding backpressure and graceful shutdown,
//! * [`obs`] — the dependency-free observability substrate: a metrics
//!   registry with Prometheus text exposition (served at `GET /metrics`),
//!   per-request traces with per-stage spans (`GET /debug/traces`), and a
//!   leveled structured event log — see `OBSERVABILITY.md`.
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through of the
//! estimator stack, `examples/serve_queries.rs` for serving a mixed query
//! workload, `examples/serve_http.rs` for the network front-end under
//! concurrent socket load, and `examples/live_updates.rs` for ingesting new
//! trajectories while serving.

pub use pathcost_core as core;
pub use pathcost_hist as hist;
pub use pathcost_live as live;
pub use pathcost_obs as obs;
pub use pathcost_persist as persist;
pub use pathcost_roadnet as roadnet;
pub use pathcost_routing as routing;
pub use pathcost_server as server;
pub use pathcost_service as service;
pub use pathcost_traj as traj;
