//! Quickstart: simulate a city, map-match its GPS data, instantiate the
//! hybrid graph and estimate the travel-time distribution of a path.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pathcost::core::{CostEstimator, HybridConfig, HybridGraph, LbEstimator, OdEstimator};
use pathcost::traj::{DatasetPreset, HmmMapMatcher, MapMatchConfig, TrajectoryStore};

fn main() {
    // 1. A synthetic Aalborg-like road network and GPS dataset.
    let mut preset = DatasetPreset::aalborg_like(7);
    preset.network.rows = 14;
    preset.network.cols = 14;
    preset.simulation.trips = 1_200;
    let net = preset.build_network();
    println!(
        "road network: {} vertices, {} edges",
        net.vertex_count(),
        net.edge_count()
    );
    let output = preset.simulate(&net).expect("simulation succeeds");
    println!("simulated {} GPS trajectories", output.trajectories.len());

    // 2. Map matching (Newson–Krumm style HMM) aligns GPS records with paths.
    let matcher = HmmMapMatcher::new(&net, MapMatchConfig::default());
    let matched = matcher.match_all(&output.trajectories);
    println!("map-matched {} trajectories", matched.len());
    let store = TrajectoryStore::new(matched);

    // 3. Instantiate the hybrid graph (path weight function W_P).
    let config = HybridConfig {
        beta: 15,
        ..HybridConfig::default()
    };
    let graph = HybridGraph::build(&net, &store, config).expect("instantiation succeeds");
    let stats = graph.stats();
    println!(
        "instantiated {} random variables (by rank: {:?}), coverage {:.0}%, {:.1} MB",
        stats.total_variables(),
        stats.count_by_rank,
        stats.coverage() * 100.0,
        stats.memory_bytes as f64 / (1024.0 * 1024.0)
    );

    // 4. Pick a frequently travelled path and estimate its cost distribution.
    let (path, occurrences) = store
        .frequent_paths(5, 15, None)
        .into_iter()
        .next()
        .unwrap_or_else(|| store.frequent_paths(3, 10, None)[0].clone());
    let departure = store.occurrences_on(&path)[0].entry_time;
    println!(
        "\nquery path {path} ({occurrences} observed traversals), departing {}",
        departure.time_of_day()
    );

    let od = OdEstimator::new(&graph);
    let lb = LbEstimator::new(&graph);
    for estimator in [&od as &dyn CostEstimator, &lb] {
        let dist = estimator
            .estimate(&path, departure)
            .expect("estimation succeeds");
        println!(
            "  {:<3} mean {:>6.1}s   p10 {:>6.1}s   p90 {:>6.1}s   P(≤ mean+60s) {:.2}",
            estimator.name(),
            dist.mean(),
            dist.quantile(0.1),
            dist.quantile(0.9),
            dist.prob_leq(dist.mean() + 60.0)
        );
    }
}
