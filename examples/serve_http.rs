//! Sustained multi-connection load against the HTTP front-end.
//!
//! Builds a 10x10 grid fixture, boots `pathcost-server` on an ephemeral
//! port, and hammers `POST /query` from several keep-alive client
//! connections at once. Every response must be a 200 with well-formed JSON
//! (zero errors over the whole run), and the sustained rate must clear
//! 10k queries/sec — the serving stack's acceptance floor: admission-queue
//! batching across connections plus the distribution cache make the steady
//! state cache-hit dominated. Finishes with `/stats` (tail latency from the
//! fixed-bucket histograms) and a graceful shutdown.
//!
//! A second **restart leg** then drives crash-safe persistence end to end
//! over HTTP: a persistence-backed engine serves live ingest epochs, takes a
//! snapshot via `POST /admin/snapshot`, is dropped mid-lineage (simulating a
//! crash after the journal's last fsync), and a recovered server must report
//! a warm recovery on `/healthz`, answer the same `/query` bodies
//! identically (modulo per-request latency telemetry), and keep accepting
//! updates.
//!
//! Run with: `cargo run --release --example serve_http`

use pathcost::core::{HybridConfig, HybridGraph, PathWeightFunction};
use pathcost::live::{LiveIngestor, PersistenceConfig, PersistentIngestor, RetentionConfig};
use pathcost::persist::RecoveryOutcome;
use pathcost::roadnet::{GeneratorConfig, NetworkKind, RoadNetwork};
use pathcost::server::{Json, Server, ServerConfig};
use pathcost::service::{QueryEngine, ServiceConfig};
use pathcost::traj::{DatasetPreset, MatchedTrajectory, SimulationConfig, TrajectoryStore};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Instant;

const CLIENTS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 1_250;
const MIN_QPS: f64 = 10_000.0;

/// The 10x10 grid fixture the acceptance run is defined over.
fn grid_fixture() -> DatasetPreset {
    DatasetPreset {
        name: "grid10".to_string(),
        network: GeneratorConfig {
            kind: NetworkKind::Grid,
            rows: 10,
            cols: 10,
            spacing_m: 200.0,
            drop_probability: 0.0,
            seed: 4242,
        },
        simulation: SimulationConfig {
            trips: 400,
            days: 10,
            hotspot_pairs: 6,
            hotspot_fraction: 0.9,
            seed: 4242 ^ 0x7157,
            ..SimulationConfig::default()
        },
    }
}

/// `POST /query` bodies covering estimate and budget-probability queries.
fn workload(store: &TrajectoryStore) -> Vec<String> {
    let mut bodies = Vec::new();
    for (i, (path, _)) in store.frequent_paths(2, 5, None).into_iter().enumerate() {
        let departure = store.occurrences_on(&path)[0].entry_time;
        let edges: Vec<String> = path.edges().iter().map(|e| e.0.to_string()).collect();
        if i % 2 == 0 {
            bodies.push(format!(
                r#"{{"type":"estimate","path":[{}],"departure_s":{}}}"#,
                edges.join(","),
                departure.0
            ));
        } else {
            bodies.push(format!(
                r#"{{"type":"prob","path":[{}],"departure_s":{},"budget_s":600}}"#,
                edges.join(","),
                departure.0
            ));
        }
        if bodies.len() == 8 {
            break;
        }
    }
    assert!(bodies.len() >= 2, "fixture must yield frequent paths");
    bodies
}

/// `POST /query/batch` envelopes covering **all four** query kinds — rank
/// and route included — across a mixed-regime request stream (regimes
/// 0..=2). The serving engine holds no regime-tagged data, so non-global
/// requests resolve through the fallback ladder: every answer must still be
/// well-formed, with the requested regime echoed in its stats block.
fn batch_workload(net: &RoadNetwork, store: &TrajectoryStore) -> Vec<String> {
    fn edges_csv(path: &pathcost::roadnet::Path) -> String {
        path.edges()
            .iter()
            .map(|e| e.0.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
    let paths: Vec<_> = store
        .frequent_paths(2, 5, None)
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    assert!(paths.len() >= 2, "fixture must yield frequent paths");
    let mut bodies = Vec::new();
    for (i, pair) in paths.chunks(2).take(4).enumerate() {
        let path = &pair[0];
        let departure = store.occurrences_on(path)[0].entry_time;
        let regime = i % 3;
        let first = path.edges()[0];
        let last = *path.edges().last().unwrap();
        let source = net.edges()[first.0 as usize].from.0;
        let destination = net.edges()[last.0 as usize].to.0;
        let mut requests = vec![
            format!(
                r#"{{"type":"estimate","path":[{}],"departure_s":{},"regime":{regime}}}"#,
                edges_csv(path),
                departure.0
            ),
            format!(
                r#"{{"type":"prob","path":[{}],"departure_s":{},"budget_s":600,"regime":{}}}"#,
                edges_csv(path),
                departure.0,
                (regime + 1) % 3
            ),
            format!(
                r#"{{"type":"route","source":{source},"destination":{destination},"departure_s":{},"budget_s":900,"k":2,"regime":{}}}"#,
                departure.0,
                (regime + 2) % 3
            ),
        ];
        if pair.len() == 2 {
            requests.push(format!(
                r#"{{"type":"rank","candidates":[[{}],[{}]],"departure_s":{},"budget_s":600,"regime":{regime}}}"#,
                edges_csv(&pair[0]),
                edges_csv(&pair[1]),
                departure.0
            ));
        }
        bodies.push(format!(r#"{{"requests":[{}]}}"#, requests.join(",")));
    }
    bodies
}

/// One keep-alive round trip; returns `(status, body)`.
fn roundtrip(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    method: &str,
    target: &str,
    body: &str,
) -> (u16, String) {
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("write request");
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("content length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// One client: `n` keep-alive requests walking the workload from `offset`.
/// Returns how many were answered 200 with well-formed JSON.
fn drive(addr: SocketAddr, bodies: &[String], offset: usize, n: usize) -> usize {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut ok = 0;
    for i in 0..n {
        let body = &bodies[(offset + i) % bodies.len()];
        let (status, response) = roundtrip(&mut stream, &mut reader, "POST", "/query", body);
        if status == 200 && pathcost::server::json::parse(response.as_bytes()).is_ok() {
            ok += 1;
        }
    }
    ok
}

fn main() {
    let preset = grid_fixture();
    println!("materialising 10x10 grid fixture '{}' …", preset.name);
    let (net, store) = preset.materialise().expect("fixture materialises");
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let graph = HybridGraph::build(&net, &store, cfg).expect("hybrid graph builds");
    println!(
        "hybrid graph: {} variables over {} edges",
        graph.stats().total_variables(),
        net.edge_count()
    );
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let bodies = workload(&store);

    let server = Server::bind(ServerConfig::default()).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    println!("serving on http://{addr} — {CLIENTS} clients x {REQUESTS_PER_CLIENT} requests\n");

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&engine));

        // Observability smoke, scrape one of two: a valid exposition before
        // any load.
        let baseline = scrape_metrics(addr);
        let served_before = series_value(&baseline, "pathcost_http_requests_total{class=\"2xx\"}");

        let start = Instant::now();
        let oks: usize = std::thread::scope(|clients| {
            (0..CLIENTS)
                .map(|c| {
                    let bodies = &bodies;
                    clients.spawn(move || drive(addr, bodies, c, REQUESTS_PER_CLIENT))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .sum()
        });
        let elapsed = start.elapsed();
        let total = CLIENTS * REQUESTS_PER_CLIENT;
        let qps = total as f64 / elapsed.as_secs_f64();

        // Tail latency straight from the server's own histograms.
        let (status, stats_body) = {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            roundtrip(&mut stream, &mut reader, "GET", "/stats", "")
        };
        assert_eq!(status, 200, "/stats must answer");
        let stats = pathcost::server::json::parse(stats_body.as_bytes()).expect("stats JSON");
        let e2e = stats.get("e2e_latency").expect("e2e_latency");
        println!("served {total} queries in {elapsed:.2?}  ({qps:.0} queries/sec)");
        println!(
            "end-to-end latency: p50 {}µs  p99 {}µs  max {}µs",
            e2e.get("p50_us").and_then(Json::as_u64).unwrap_or(0),
            e2e.get("p99_us").and_then(Json::as_u64).unwrap_or(0),
            e2e.get("max_us").and_then(Json::as_u64).unwrap_or(0),
        );
        println!(
            "cache: {} hits / {} misses",
            stats.get("cache_hits").and_then(Json::as_u64).unwrap_or(0),
            stats
                .get("cache_misses")
                .and_then(Json::as_u64)
                .unwrap_or(0),
        );

        // Batch leg: rank and route ride POST /query/batch alongside
        // estimate/prob, in a mixed-regime stream.
        let batches = batch_workload(&net, &store);
        let (mut stream, mut reader) = connect(addr);
        let mut batch_answers = 0usize;
        let mut regime_echoes = 0usize;
        for body in &batches {
            let (status, response) =
                roundtrip(&mut stream, &mut reader, "POST", "/query/batch", body);
            assert_eq!(status, 200, "batch must answer: {response}");
            let parsed = pathcost::server::json::parse(response.as_bytes()).expect("batch JSON");
            let results = parsed
                .get("results")
                .and_then(Json::as_array)
                .expect("results array");
            for result in results {
                assert!(
                    result.get("error").is_none(),
                    "batch item failed: {result:?} in {response}"
                );
                if result
                    .get("stats")
                    .and_then(|s| s.get("regime"))
                    .and_then(Json::as_u64)
                    .is_some()
                {
                    regime_echoes += 1;
                }
                batch_answers += 1;
            }
        }
        assert!(
            regime_echoes > 0,
            "mixed-regime stream must echo non-global regimes in stats"
        );
        println!(
            "batch: {} answers across {} mixed-regime envelopes (estimate/prob/rank/route), {} regime echoes",
            batch_answers,
            batches.len(),
            regime_echoes
        );

        // Observability smoke, scrape two of two: still valid after the
        // full load, with the request counter having advanced by the run.
        let page = scrape_metrics(addr);
        let served_after = series_value(&page, "pathcost_http_requests_total{class=\"2xx\"}");
        assert!(
            served_after >= served_before + total as f64,
            "2xx counter must advance with the load: {served_before} -> {served_after}"
        );
        println!(
            "metrics: exposition valid, 2xx counter {served_before} -> {served_after} across the run"
        );

        handle.shutdown();
        serving.join().expect("server thread");
        println!("graceful shutdown complete");

        assert_eq!(oks, total, "every response must be a 200 with valid JSON");
        assert!(
            qps >= MIN_QPS,
            "sustained rate {qps:.0} q/s under the {MIN_QPS:.0} q/s acceptance floor"
        );
        println!("\n✓ {total} queries, zero errors, {qps:.0} q/s ≥ {MIN_QPS:.0} q/s floor");
    });

    restart_leg(&net, &store, &bodies);
}

/// Scrapes `/metrics`, validates the exposition with the crate's strict
/// parser, and returns the page (the CI smoke step runs this twice).
fn scrape_metrics(addr: SocketAddr) -> String {
    let (mut stream, mut reader) = connect(addr);
    let (status, page) = roundtrip(&mut stream, &mut reader, "GET", "/metrics", "");
    assert_eq!(status, 200, "/metrics must answer");
    pathcost::obs::expo::validate(&page)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{page}"));
    page
}

/// The value of an exposition series given its full name-plus-labels prefix.
fn series_value(page: &str, series: &str) -> f64 {
    page.lines()
        .find_map(|l| {
            l.strip_prefix(series)?
                .strip_prefix(' ')?
                .trim()
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("series {series:?} missing from exposition"))
}

/// One keep-alive client connection as a `(stream, reader)` pair.
fn connect(addr: SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

/// Signals shutdown on drop so a panicking assertion inside a serving scope
/// unblocks the accept loop instead of deadlocking the scope join.
struct ShutdownGuard(pathcost::server::ShutdownHandle);

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        self.0.shutdown();
    }
}

/// A `/query` response with the per-request latency/cache telemetry
/// stripped: the recovered server must match on everything else.
fn canonical(response: &str) -> Json {
    let parsed = pathcost::server::json::parse(response.as_bytes()).expect("response JSON");
    match parsed {
        Json::Object(fields) => {
            Json::Object(fields.into_iter().filter(|(k, _)| k != "stats").collect())
        }
        other => other,
    }
}

/// Crash-safe persistence over HTTP: serve live epochs with a journal,
/// snapshot via the admin endpoint, crash, recover warm and answer the same
/// queries byte-identically.
fn restart_leg(net: &RoadNetwork, store: &TrajectoryStore, bodies: &[String]) {
    println!("\n— restart leg: crash-safe persistence over HTTP —");
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = store.len() * 80 / 100;
    let base_rows: Vec<MatchedTrajectory> = store.matched()[..split].to_vec();
    let fresh: Vec<MatchedTrajectory> = store.matched()[split..].to_vec();
    let state_dir =
        std::env::temp_dir().join(format!("pathcost-serve-http-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);

    // First boot: cold lineage, three live epochs, snapshot at epoch 2 so a
    // journal tail (epoch 3) is left for the recovery to replay.
    let base = TrajectoryStore::new(base_rows.clone());
    let weights = PathWeightFunction::instantiate(net, &base, &cfg).expect("instantiates");
    let engine = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(net, weights.clone(), cfg.clone())),
        ServiceConfig::default(),
    );
    let mut ingestor = LiveIngestor::from_instantiated(net, base, weights, cfg.clone())
        .expect("config matches")
        .with_persistence(&state_dir, PersistenceConfig::default())
        .expect("state dir is writable");

    let server = Server::bind(ServerConfig {
        persistence: Some(ingestor.status()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();

    let chunk = fresh.len().div_ceil(3).max(1);
    let reference: Vec<String> = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&engine));
        let _guard = ShutdownGuard(handle.clone());
        let (mut stream, mut reader) = connect(addr);

        let mut chunks = fresh.chunks(chunk);
        let update = ingestor
            .ingest(chunks.next().unwrap().to_vec())
            .expect("ingest");
        engine.apply_update(update).expect("update applies");

        // The admin flag is honoured after the *next* published epoch.
        let (status, body) = roundtrip(&mut stream, &mut reader, "POST", "/admin/snapshot", "");
        assert_eq!(status, 202, "snapshot must be accepted: {body}");
        for batch in chunks {
            let update = ingestor.ingest(batch.to_vec()).expect("ingest");
            engine.apply_update(update).expect("update applies");
        }

        let (status, health) = roundtrip(&mut stream, &mut reader, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let health = pathcost::server::json::parse(health.as_bytes()).expect("healthz JSON");
        let persistence = health.get("persistence").expect("persistence block");
        assert_eq!(
            persistence.get("recovery").and_then(Json::as_str),
            Some("cold")
        );
        assert_eq!(
            persistence.get("snapshot_epoch").and_then(Json::as_u64),
            Some(2),
            "the admin request snapshots the next epoch"
        );
        println!(
            "first boot: cold lineage, {} live epochs, snapshot taken at epoch 2 via POST /admin/snapshot",
            ingestor.epoch()
        );

        let reference = bodies
            .iter()
            .map(|body| {
                let (status, response) =
                    roundtrip(&mut stream, &mut reader, "POST", "/query", body);
                assert_eq!(status, 200, "reference query must answer: {response}");
                response
            })
            .collect();
        handle.shutdown();
        serving.join().expect("server thread");
        reference
    });
    let epoch_before = ingestor.epoch();
    drop(engine);
    drop(ingestor); // simulated crash: nothing flushed beyond the journal

    // Second boot: recover the lineage and serve it again.
    let (recovered, report) = PersistentIngestor::recover(
        net,
        &state_dir,
        cfg,
        RetentionConfig::default(),
        PersistenceConfig::default(),
        || TrajectoryStore::new(base_rows.clone()),
    )
    .expect("recovery succeeds");
    assert_eq!(report.outcome, RecoveryOutcome::Warm, "state dir was live");
    assert_eq!(report.snapshot_epoch, 2);
    assert_eq!(recovered.epoch(), epoch_before, "lineage resumes in place");
    println!(
        "restart: warm recovery from snapshot epoch {} + {} journal records",
        report.snapshot_epoch, report.replayed_records
    );

    let engine = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(
            net,
            recovered.weights().as_ref().clone(),
            recovered.config().clone(),
        )),
        ServiceConfig::default(),
    );
    engine.resume_epoch(recovered.epoch());
    let server = Server::bind(ServerConfig {
        persistence: Some(recovered.status()),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr");
    let handle = server.shutdown_handle();
    let mut recovered = recovered;

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&engine));
        let _guard = ShutdownGuard(handle.clone());
        let (mut stream, mut reader) = connect(addr);

        let (status, health) = roundtrip(&mut stream, &mut reader, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let health = pathcost::server::json::parse(health.as_bytes()).expect("healthz JSON");
        assert_eq!(
            health.get("epoch").and_then(Json::as_u64),
            Some(epoch_before),
            "the serving epoch resumes where the crash left it"
        );
        let persistence = health.get("persistence").expect("persistence block");
        assert_eq!(
            persistence.get("recovery").and_then(Json::as_str),
            Some("warm")
        );

        // Identical answers (sans latency telemetry) for the whole
        // captured workload.
        for (body, expected) in bodies.iter().zip(&reference) {
            let (status, response) = roundtrip(&mut stream, &mut reader, "POST", "/query", body);
            assert_eq!(status, 200);
            assert_eq!(
                canonical(&response),
                canonical(expected),
                "recovered answer diverged for {body}"
            );
        }

        // Ingest continues: the next epoch lands on the recovered lineage.
        let cutoff = recovered
            .store()
            .start_time_at_percentile(10)
            .expect("store is non-empty");
        let update = recovered
            .retire_before(cutoff)
            .expect("post-restart retire");
        assert_eq!(update.epoch, epoch_before + 1);
        engine.apply_update(update).expect("update applies");
        let (status, health) = roundtrip(&mut stream, &mut reader, "GET", "/healthz", "");
        assert_eq!(status, 200);
        let health = pathcost::server::json::parse(health.as_bytes()).expect("healthz JSON");
        assert_eq!(
            health.get("epoch").and_then(Json::as_u64),
            Some(epoch_before + 1)
        );

        handle.shutdown();
        serving.join().expect("server thread");
    });

    let _ = std::fs::remove_dir_all(&state_dir);
    println!(
        "\n✓ restart leg: {} /query answers identical after warm recovery; ingest continued to epoch {}",
        bodies.len(),
        epoch_before + 1
    );
}
