//! Stochastic routing (§4.3 / Figure 18): answer "which path has the highest
//! probability of arriving within the budget?" with the arena-based
//! best-first probabilistic path query, comparing the legacy LB estimator
//! with the paper's OD estimator as the distribution oracle inside the
//! search.
//!
//! ```text
//! cargo run --release --example stochastic_routing
//! ```

use pathcost::core::{CostEstimator, HybridConfig, HybridGraph, LbEstimator, OdEstimator};
use pathcost::roadnet::search::{fastest_path, free_flow_time_s};
use pathcost::roadnet::VertexId;
use pathcost::routing::{BestFirstRouter, RouterConfig};
use pathcost::traj::{DatasetPreset, Timestamp, TrajectoryStore};
use std::time::Instant;

fn main() {
    let mut preset = DatasetPreset::aalborg_like(23);
    preset.network.rows = 12;
    preset.network.cols = 12;
    preset.simulation.trips = 1_200;
    let net = preset.build_network();
    let output = preset.simulate(&net).expect("simulation succeeds");
    let store = TrajectoryStore::from_ground_truth(&output);
    let graph = HybridGraph::build(
        &net,
        &store,
        HybridConfig {
            beta: 15,
            ..HybridConfig::default()
        },
    )
    .expect("instantiation succeeds");

    let router = BestFirstRouter::new(
        &graph,
        RouterConfig {
            max_expansions: 6_000,
            max_candidates: 32,
            max_path_edges: 60,
        },
    )
    .expect("valid router config");

    let source = VertexId(0);
    let destination = VertexId((net.vertex_count() - 1) as u32);
    let departure = Timestamp::from_day_hms(0, 8, 0, 0);
    let free_flow = free_flow_time_s(
        &net,
        &fastest_path(&net, source, destination).expect("reachable"),
    );
    let budget_s = free_flow * 2.0;
    println!(
        "routing {source} -> {destination} departing 08:00, budget {:.1} min (free flow {:.1} min)\n",
        budget_s / 60.0,
        free_flow / 60.0
    );

    let od = OdEstimator::new(&graph);
    let lb = LbEstimator::new(&graph);
    for estimator in [&lb as &dyn CostEstimator, &od] {
        let started = Instant::now();
        let result = router
            .route(estimator, source, destination, departure, budget_s)
            .expect("routing succeeds");
        let elapsed = started.elapsed().as_secs_f64() * 1_000.0;
        match result {
            Some(route) => println!(
                "{:<3}-search: {:>6.1} ms, best path has {} edges, P(on time) = {:.3}, mean {:.1} min ({} candidates, {} expansions, {} incumbent prunes)",
                estimator.name(),
                elapsed,
                route.path.cardinality(),
                route.probability,
                route.distribution.mean() / 60.0,
                route.evaluated_candidates,
                route.expansions,
                route.incumbent_prunes
            ),
            None => println!(
                "{:<3}-search: no path satisfies the budget",
                estimator.name()
            ),
        }
    }
}
