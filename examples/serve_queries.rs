//! Multi-scenario query serving over a dataset preset.
//!
//! Builds the hybrid graph for the tiny preset, wraps it in the
//! `pathcost-service` engine, and drives a mixed workload through the batch
//! executor: full distribution estimates (with deliberate repetition, the way
//! commuter traffic repeats popular paths), arrival-probability point
//! queries, a candidate ranking, and stochastic routing. Prints per-query
//! outcomes and the engine's service-level stats, and checks the acceptance
//! property that repeated paths produce a non-zero cache hit rate.
//!
//! Run with: `cargo run --release --example serve_queries`

use pathcost::core::{HybridConfig, HybridGraph};
use pathcost::roadnet::search::{fastest_path, free_flow_time_s};
use pathcost::roadnet::VertexId;
use pathcost::service::{QueryEngine, QueryRequest, QueryResponse, ServiceConfig};
use pathcost::traj::{DatasetPreset, Timestamp};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let preset = DatasetPreset::tiny(2024);
    println!("materialising preset '{}' …", preset.name);
    let (net, store) = preset.materialise().expect("preset materialises");
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let build_start = Instant::now();
    let graph = HybridGraph::build(&net, &store, cfg).expect("hybrid graph builds");
    println!(
        "hybrid graph: {} variables over {} edges ({:.2?})",
        graph.stats().total_variables(),
        net.edge_count(),
        build_start.elapsed()
    );

    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());

    // Assemble a mixed workload over the most travelled paths. Each path
    // appears several times — as a distribution estimate, as a budget
    // probability, and inside the ranking — which is exactly the repetition
    // the distribution cache exists for.
    let frequent: Vec<_> = store
        .frequent_paths(3, 10, None)
        .into_iter()
        .take(5)
        .collect();
    assert!(
        !frequent.is_empty(),
        "the preset must contain frequent paths"
    );
    let mut requests = Vec::new();
    for (path, _) in &frequent {
        let departure = store.occurrences_on(path)[0].entry_time;
        let free_flow = free_flow_time_s(&net, path);
        requests.push(QueryRequest::EstimateDistribution {
            path: path.clone(),
            departure,
            regime: pathcost_service::RegimeId::ALL_TRAFFIC,
        });
        requests.push(QueryRequest::ProbWithinBudget {
            path: path.clone(),
            departure,
            budget_s: free_flow * 1.5,
            regime: pathcost_service::RegimeId::ALL_TRAFFIC,
        });
    }
    let rank_departure = store.occurrences_on(&frequent[0].0)[0].entry_time;
    requests.push(QueryRequest::RankPaths {
        candidates: frequent.iter().map(|(p, _)| p.clone()).collect(),
        departure: rank_departure,
        budget_s: 1_200.0,
        regime: pathcost_service::RegimeId::ALL_TRAFFIC,
    });
    let source = VertexId(0);
    let destination = VertexId((net.vertex_count() - 1) as u32);
    let route_budget = free_flow_time_s(
        &net,
        &fastest_path(&net, source, destination).expect("grid is connected"),
    ) * 3.0;
    for _ in 0..2 {
        // The second identical route query is served from the warm cache.
        requests.push(QueryRequest::Route {
            source,
            destination,
            departure: Timestamp::from_day_hms(0, 8, 15, 0),
            budget_s: route_budget,
            k: 1,
            regime: pathcost_service::RegimeId::ALL_TRAFFIC,
        });
    }
    // Route alternatives: the top-3 incumbents of the same search arena.
    requests.push(QueryRequest::Route {
        source,
        destination,
        departure: Timestamp::from_day_hms(0, 8, 15, 0),
        budget_s: route_budget,
        k: 3,
        regime: pathcost_service::RegimeId::ALL_TRAFFIC,
    });

    println!("\nexecuting a batch of {} mixed queries …", requests.len());
    let batch_start = Instant::now();
    let results = engine.execute_batch(&requests);
    let batch_elapsed = batch_start.elapsed();

    for (request, result) in requests.iter().zip(&results) {
        match result {
            Ok(outcome) => {
                let summary = match &outcome.response {
                    QueryResponse::Distribution(h) => {
                        format!(
                            "distribution: mean {:.1}s, {} buckets",
                            h.mean(),
                            h.bucket_count()
                        )
                    }
                    QueryResponse::Probability(p) => format!("P(arrive within budget) = {p:.3}"),
                    QueryResponse::Ranking(r) => format!(
                        "ranking: best candidate #{} at P={:.3} ({} ranked)",
                        r[0].index,
                        r[0].probability,
                        r.len()
                    ),
                    QueryResponse::Route(Some(route)) => format!(
                        "route: {} edges, P={:.3}, {} candidates evaluated, {} incumbent prunes",
                        route.path.cardinality(),
                        route.probability,
                        route.evaluated_candidates,
                        route.incumbent_prunes
                    ),
                    QueryResponse::Route(None) => "route: infeasible within budget".to_string(),
                    QueryResponse::Routes(routes) => format!(
                        "routes: {} alternatives, best P={:.3} over {} edges",
                        routes.len(),
                        routes.first().map(|r| r.probability).unwrap_or(0.0),
                        routes.first().map(|r| r.path.cardinality()).unwrap_or(0)
                    ),
                };
                println!(
                    "  {:<22} {:>3} hit / {:>3} miss  {:>9.2?}  {summary}",
                    kind_name(request),
                    outcome.stats.cache_hits,
                    outcome.stats.cache_misses,
                    outcome.stats.latency,
                );
            }
            Err(e) => println!("  {:<22} failed: {e}", kind_name(request)),
        }
    }

    let stats = engine.stats();
    println!("\nservice stats after the batch ({batch_elapsed:.2?} total):");
    println!(
        "  queries: {} estimate / {} probability / {} rank / {} route ({} errors)",
        stats.estimate_queries,
        stats.probability_queries,
        stats.rank_queries,
        stats.route_queries,
        stats.errors
    );
    println!(
        "  cache: {} hits / {} misses (hit rate {:.1}%), {} entries, eviction rate {:.1}%",
        stats.cache_hits,
        stats.cache_misses,
        stats.hit_rate() * 100.0,
        engine.cache().len(),
        stats.eviction_rate() * 100.0
    );
    println!(
        "  estimations: {} (mean decomposition depth {:.2})",
        stats.estimations,
        stats.mean_decomposition_depth()
    );
    println!(
        "  batch: {} requests, {} duplicate estimation jobs folded",
        stats.batch_requests, stats.batch_jobs_deduplicated
    );
    println!(
        "  routing: {} candidates evaluated ({} answered by the cache), {} incumbent prunes",
        stats.route_candidates_evaluated, stats.route_eval_cache_hits, stats.route_incumbent_prunes
    );
    println!("  mean latency: {:.2?}", stats.mean_latency());

    assert!(
        stats.cache_hit_rate() > 0.0,
        "repeated paths must produce cache hits"
    );
    assert!(
        stats.batch_jobs_deduplicated > 0,
        "the workload repeats paths, so the batch must deduplicate jobs"
    );
    println!("\n✓ mixed workload served; cache hit rate > 0 on repeated paths");
}

fn kind_name(request: &QueryRequest) -> &'static str {
    match request {
        QueryRequest::EstimateDistribution { .. } => "EstimateDistribution",
        QueryRequest::ProbWithinBudget { .. } => "ProbWithinBudget",
        QueryRequest::RankPaths { .. } => "RankPaths",
        QueryRequest::Route { .. } => "Route",
    }
}
