//! Data-sparseness analysis (Figure 3): even large trajectory collections
//! cannot cover long paths with enough traversals, which is why the hybrid
//! graph derives long-path distributions from the joint distributions of
//! well-covered sub-paths.
//!
//! ```text
//! cargo run --release --example sparseness_report
//! ```

use pathcost::core::{HybridConfig, HybridGraph};
use pathcost::traj::{DatasetPreset, TrajectoryStore};

fn main() {
    for preset in [DatasetPreset::tiny(3), {
        let mut p = DatasetPreset::aalborg_like(3);
        p.network.rows = 14;
        p.network.cols = 14;
        p.simulation.trips = 1_500;
        p
    }] {
        let net = preset.build_network();
        let output = preset.simulate(&net).expect("simulation succeeds");
        let store = TrajectoryStore::from_ground_truth(&output);
        println!(
            "dataset {} — {} trajectories on {} edges",
            preset.name,
            store.len(),
            net.edge_count()
        );
        println!("  |P|   max #trajectories on any path of that cardinality");
        for (k, max) in store.max_occurrences_by_cardinality(15).iter().enumerate() {
            let bar = "#".repeat(((*max as f64).ln().max(0.0) * 4.0) as usize);
            println!("  {:>3}   {:>6}  {}", k + 1, max, bar);
        }

        // How the hybrid graph reacts: number of instantiated variables by rank.
        let graph = HybridGraph::build(
            &net,
            &store,
            HybridConfig {
                beta: 15,
                ..HybridConfig::default()
            },
        )
        .expect("instantiation succeeds");
        println!(
            "  instantiated variables by rank: {:?} (coverage {:.0}%)\n",
            graph.stats().count_by_rank,
            graph.stats().coverage() * 100.0
        );
    }
}
