//! The paper's motivating example (Figure 1(a)): a traveller must reach the
//! airport within 60 minutes and has two candidate paths. The path with the
//! better *mean* is not the path with the higher probability of arriving on
//! time — which is why distributions, not averages, must be estimated.
//!
//! ```text
//! cargo run --release --example airport_deadline
//! ```

use pathcost::core::{HybridConfig, HybridGraph};
use pathcost::roadnet::search::{fastest_path, free_flow_time_s};
use pathcost::roadnet::VertexId;
use pathcost::routing::rank_by_probability;
use pathcost::traj::{DatasetPreset, Timestamp, TrajectoryStore};

fn main() {
    // A Beijing-like ring-radial network: several alternative routes exist
    // between any two points (inner arterials vs the outer motorway ring).
    let mut preset = DatasetPreset::beijing_like(11);
    preset.network.rows = 6;
    preset.network.cols = 16;
    preset.simulation.trips = 2_000;
    let net = preset.build_network();
    let output = preset.simulate(&net).expect("simulation succeeds");
    let store = TrajectoryStore::from_ground_truth(&output);
    let graph = HybridGraph::build(
        &net,
        &store,
        HybridConfig {
            beta: 15,
            ..HybridConfig::default()
        },
    )
    .expect("instantiation succeeds");

    // Home and airport: two far-apart vertices.
    let home = VertexId(1);
    let airport = VertexId((net.vertex_count() - 3) as u32);
    let departure = Timestamp::from_day_hms(0, 8, 0, 0);

    // Candidate P1: the fastest path by free-flow time.
    let p1 = fastest_path(&net, home, airport).expect("airport reachable");
    // Candidate P2: an alternative that avoids the first edge of P1.
    let banned = p1.edges()[p1.cardinality() / 2];
    let p2 = pathcost::roadnet::search::shortest_path(&net, home, airport, |e| {
        let base = net
            .edge(e)
            .map(|x| x.free_flow_time_s())
            .unwrap_or(f64::MAX);
        if e == banned {
            base * 50.0
        } else {
            base
        }
    })
    .expect("alternative path exists");

    println!(
        "P1: {} edges, free-flow {:.1} min",
        p1.cardinality(),
        free_flow_time_s(&net, &p1) / 60.0
    );
    println!(
        "P2: {} edges, free-flow {:.1} min",
        p2.cardinality(),
        free_flow_time_s(&net, &p2) / 60.0
    );

    let d1 = graph.estimate(&p1, departure).expect("P1 estimation");
    let d2 = graph.estimate(&p2, departure).expect("P2 estimation");
    println!(
        "\nP1: mean {:.1} min, P2: mean {:.1} min",
        d1.mean() / 60.0,
        d2.mean() / 60.0
    );

    // The paper's question: which path has the higher probability of arriving
    // within the deadline?
    let deadline_min = (d1.mean().min(d2.mean()) / 60.0) * 1.25;
    let ranked = rank_by_probability(
        &[("P1", d1.clone()), ("P2", d2.clone())],
        deadline_min * 60.0,
    );
    println!("\ndeadline: {deadline_min:.1} min after departure");
    for (label, prob) in &ranked {
        println!("  P(arrive on time | {label}) = {prob:.3}");
    }
    println!(
        "\n=> choose {} even though {} has the better mean",
        ranked[0].0,
        if d1.mean() < d2.mean() { "P1" } else { "P2" }
    );
}
