//! Ingest/retire churn while serving: live trajectory updates against a
//! serving engine.
//!
//! Builds the hybrid graph from 85% of a simulated dataset and serves a warm
//! query workload from one thread while the main thread ingests the
//! remaining trajectories in three batches through `pathcost-live`, then
//! TTL-retires the oldest slice of the store as a fourth epoch. Each update
//! publishes a new weight-function epoch into the engine
//! (`QueryEngine::apply_update`), which surgically evicts only the cache
//! entries that depended on the changed variables — including readers of
//! variables the retirement *deleted* (support dropped below β) — the
//! serving thread never stops, never observes a torn epoch, and keeps its
//! untouched warm entries. After the churn, the dependency index must track
//! no more entries than the cache actually holds (the leak fix this example
//! smoke-tests in CI).
//!
//! Unlike the other (fully seeded) examples, the *counters* printed here —
//! evictions per epoch, dependency-index size, queries served — depend on
//! how the serving thread interleaves with the four updates, so they vary
//! run to run. The assertions only use scheduling-independent facts: four
//! epochs applied, at least the pre-thread warm set's dependents evicted,
//! trajectories retired, the dependency index bounded by live cache
//! entries, zero query errors. Answer *correctness* across epochs is pinned
//! elsewhere (`tests/live_equivalence.rs`).
//!
//! After the churn, a **restart leg** exercises crash-safe persistence: the
//! ingestor journals every epoch to a state directory, the engine and
//! ingestor are dropped (simulating a process exit), and
//! `PersistentIngestor::recover` replays the journal onto the base snapshot.
//! The recovered lineage must answer the whole warm workload identically to
//! the pre-restart engine and keep accepting updates.
//!
//! Run with: `cargo run --release --example live_updates`

use pathcost::core::{HybridConfig, HybridGraph, PathWeightFunction};
use pathcost::live::{LiveIngestor, PersistenceConfig, PersistentIngestor, RetentionConfig};
use pathcost::persist::RecoveryOutcome;
use pathcost::service::{QueryEngine, QueryOutcome, QueryRequest, QueryResponse, ServiceConfig};
use pathcost::traj::{DatasetPreset, MatchedTrajectory, Timestamp, TrajectoryStore};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let preset = DatasetPreset::tiny(2026);
    println!("materialising preset '{}' …", preset.name);
    let (net, full) = preset.materialise().expect("preset materialises");
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * 85 / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let fresh: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();
    println!(
        "serving from {} trajectories; {} arriving live",
        base.len(),
        fresh.len()
    );

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).expect("instantiates");
    let engine = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig::default(),
    );
    // Journal every epoch to a state directory so the restart leg below can
    // recover the lineage after a simulated crash.
    let state_dir =
        std::env::temp_dir().join(format!("pathcost-live-updates-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg.clone())
        .expect("config matches")
        .with_persistence(&state_dir, PersistenceConfig::default())
        .expect("state dir is writable");

    // The serving workload: every instantiated variable's own anchor (these
    // entries consume the variables the ingest will touch) plus a dead-hour
    // probe per path (fallback-backed survivors).
    let mut requests: Vec<QueryRequest> = Vec::new();
    for var in engine.graph().weights().variables().iter().take(24) {
        requests.push(QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: engine.canonical_departure(var.interval),
            regime: pathcost_service::RegimeId::ALL_TRAFFIC,
        });
        requests.push(QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: Timestamp::from_day_hms(0, 3, 30, 0),
            regime: pathcost_service::RegimeId::ALL_TRAFFIC,
        });
    }
    for request in &requests {
        engine.execute(request).expect("warm-up query succeeds");
    }
    println!("cache warmed: {} entries", engine.cache().len());

    let stop = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        // Serving thread: loops the warm workload until ingestion finishes.
        let serving = scope.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                for request in &requests {
                    engine.execute(request).expect("serving query succeeds");
                    served.fetch_add(1, Ordering::Relaxed);
                }
            }
        });

        // Main thread: ingest the fresh trajectories in three batches.
        let chunk = fresh.len().div_ceil(3).max(1);
        for batch in fresh.chunks(chunk) {
            let ingest_start = Instant::now();
            let update = ingestor.ingest(batch.to_vec()).expect("ingest succeeds");
            let changed = update.changed();
            let dirty = update.dirty_keys;
            let report = engine.apply_update(update).expect("update applies");
            println!(
                "epoch {}: +{} trajectories, {} dirty keys → {} updated / {} added variables; \
                 evicted {}/{} cache entries ({} tracked, {} swept) in {:.2?}",
                report.epoch,
                batch.len(),
                dirty,
                report.variables_updated,
                report.variables_added,
                report.evicted_total(),
                report.cache_entries_before,
                report.evicted_tracked,
                report.evicted_swept,
                ingest_start.elapsed(),
            );
            assert!(changed >= report.variables_updated + report.variables_added);
        }

        // Fourth epoch, still under live traffic: the oldest ~35% of the
        // store hits its TTL. Variables losing their β support are deleted;
        // their readers are flushed and containing paths swept.
        let cutoff = ingestor
            .store()
            .start_time_at_percentile(35)
            .expect("store is non-empty");
        let retire_start = Instant::now();
        let update = ingestor.retire_before(cutoff).expect("retire succeeds");
        let retired = update.trajectories_retired;
        let report = engine.apply_update(update).expect("update applies");
        println!(
            "epoch {}: -{} trajectories (TTL) → {} updated / {} removed variables; \
             evicted {}/{} cache entries ({} tracked, {} swept, {} stale edges purged) in {:.2?}",
            report.epoch,
            retired,
            report.variables_updated,
            report.variables_removed,
            report.evicted_total(),
            report.cache_entries_before,
            report.evicted_tracked,
            report.evicted_swept,
            report.stale_reader_purges,
            retire_start.elapsed(),
        );
        assert!(retired > 0, "the TTL cut must retire trajectories");

        stop.store(true, Ordering::Relaxed);
        serving.join().expect("serving thread joins");
    });

    let stats = engine.stats();
    println!(
        "\nserved {} queries in {:.2?} while ingesting (epoch now {})",
        served.load(Ordering::Relaxed),
        start.elapsed(),
        engine.epoch()
    );
    println!(
        "  cache: hit rate {:.1}%, eviction rate {:.1}%, {} entries live",
        stats.hit_rate() * 100.0,
        stats.eviction_rate() * 100.0,
        engine.cache().len()
    );
    println!(
        "  ingest: {} updates, {} trajectories in, {} retired, {} variables updated, {} added, {} removed",
        stats.ingest_updates,
        stats.ingest_trajectories,
        stats.ingest_trajectories_retired,
        stats.ingest_variables_updated,
        stats.ingest_variables_added,
        stats.ingest_variables_removed
    );
    println!(
        "  invalidation: {} tracked evictions, {} containment-swept ({} total), {} stale reader edges purged",
        stats.invalidation_tracked_evictions,
        stats.invalidation_swept_evictions,
        stats.invalidation_evictions(),
        stats.invalidation_stale_reader_purges
    );
    println!(
        "  dependency index: {} variables tracked, {} reader edges over {} entries ({} cached)",
        engine.dependency_index().tracked_variables(),
        engine.dependency_index().tracked_readers(),
        engine.dependency_index().tracked_entries(),
        engine.cache().len()
    );

    assert_eq!(
        stats.ingest_updates, 4,
        "three ingest batches plus one retirement were applied"
    );
    assert!(
        stats.ingest_trajectories_retired > 0,
        "the TTL epoch retired data"
    );
    assert!(
        stats.invalidation_evictions() > 0,
        "updates touching served variables must evict their entries"
    );
    assert!(
        engine.dependency_index().tracked_entries() <= engine.cache().len(),
        "the dependency index may not track more entries than the cache holds"
    );
    assert!(stats.errors == 0, "no query may fail across epochs");
    println!(
        "\n✓ served continuously across {} live epochs (ingest + TTL retirement) with targeted invalidation",
        engine.epoch()
    );

    // ---- Restart leg: crash, recover, assert identical answers ------------
    // Capture the full warm workload's answers and the lineage position,
    // then drop the engine and ingestor as a process exit would.
    let reference: Vec<QueryOutcome> = requests
        .iter()
        .map(|request| engine.execute(request).expect("reference query succeeds"))
        .collect();
    let (epoch_before, rows_before) = (ingestor.epoch(), ingestor.store().len());
    drop(engine);
    drop(ingestor);

    let restart = Instant::now();
    let (recovered, report) = PersistentIngestor::recover(
        &net,
        &state_dir,
        cfg,
        RetentionConfig::default(),
        PersistenceConfig::default(),
        // Journal-only fallback: deterministically rebuild the base store.
        || TrajectoryStore::new(full.matched()[..split].to_vec()),
    )
    .expect("recovery succeeds");
    println!(
        "\nrestarted in {:.2?}: {} recovery from snapshot epoch {} + {} journal records",
        restart.elapsed(),
        report.outcome.as_str(),
        report.snapshot_epoch,
        report.replayed_records
    );
    assert_eq!(report.outcome, RecoveryOutcome::Warm, "state dir was live");
    assert_eq!(recovered.epoch(), epoch_before, "lineage resumes in place");
    assert_eq!(recovered.store().len(), rows_before, "store rows survive");

    // A fresh engine over the recovered weights must answer the whole warm
    // workload identically to the pre-restart engine.
    let engine = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(
            &net,
            recovered.weights().as_ref().clone(),
            recovered.config().clone(),
        )),
        ServiceConfig::default(),
    );
    engine.resume_epoch(recovered.epoch());
    for (request, expected) in requests.iter().zip(&reference) {
        let outcome = engine.execute(request).expect("recovered query succeeds");
        match (&outcome.response, &expected.response) {
            (QueryResponse::Distribution(a), QueryResponse::Distribution(b)) => {
                assert_eq!(a, b, "recovered answer diverged for {request:?}")
            }
            _ => panic!("unexpected response shape"),
        }
    }

    // The recovered lineage keeps accepting updates: a deeper TTL cut
    // publishes the next epoch and applies to the serving engine.
    let mut recovered = recovered;
    let cutoff = recovered
        .store()
        .start_time_at_percentile(20)
        .expect("store is non-empty");
    let update = recovered
        .retire_before(cutoff)
        .expect("post-restart retire");
    assert_eq!(update.epoch, epoch_before + 1);
    let report = engine.apply_update(update).expect("update applies");
    assert_eq!(engine.epoch(), epoch_before + 1);
    println!(
        "post-restart epoch {}: retirement applied ({} evicted)",
        report.epoch,
        report.evicted_total()
    );

    let _ = std::fs::remove_dir_all(&state_dir);
    println!(
        "\n✓ restart leg: {} warm workload answers identical after recovery; ingest continued to epoch {}",
        requests.len(),
        engine.epoch()
    );
}
