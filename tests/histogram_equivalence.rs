//! Equivalence property tests: the optimised histogram kernels (sweep-line
//! rearrangement, scratch-buffered convolution with its point-mass fast path,
//! heap-based coarsening, binary-search CDF evaluation) against the retained
//! naive reference implementations in `pathcost::hist::naive` — the exact
//! pre-optimisation code. Where the arithmetic is reassociated (sweep
//! accumulation, CDF differencing) equivalence is asserted within `1e-12`
//! total variation; where the operation sequence is identical (coarsening
//! merge order, `prob_leq`, `quantile`, `pdf_at`) it is asserted bit-for-bit.

use pathcost::hist::convolution::{
    convolve_many_with_limit, convolve_many_with_scratch, convolve_with_limit,
};
use pathcost::hist::{naive, Bucket, ConvolveScratch, Histogram1D};
use proptest::prelude::*;

/// `(start, width, mass)` triples convertible into overlapping buckets.
fn overlapping_triples() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    prop::collection::vec((0.0f64..400.0, 0.5f64..60.0, 0.01f64..1.0), 1..20)
}

fn to_entries(triples: &[(f64, f64, f64)]) -> Vec<(Bucket, f64)> {
    triples
        .iter()
        .map(|&(lo, width, mass)| (Bucket::new(lo, lo + width).unwrap(), mass))
        .collect()
}

fn histogram(triples: &[(f64, f64, f64)]) -> Histogram1D {
    Histogram1D::from_overlapping(&to_entries(triples)).unwrap()
}

/// Total variation distance computed over the union of both bucket grids.
fn total_variation(a: &Histogram1D, b: &Histogram1D) -> f64 {
    let mut cuts: Vec<f64> = a
        .buckets()
        .iter()
        .chain(b.buckets())
        .flat_map(|bk| [bk.lo, bk.hi])
        .collect();
    cuts.sort_by(f64::total_cmp);
    cuts.dedup();
    let mut tv = 0.0;
    for w in cuts.windows(2) {
        tv += (a.prob_within(w[0], w[1]) - b.prob_within(w[0], w[1])).abs();
    }
    0.5 * tv
}

/// A single-bucket histogram degenerate enough to trigger the point-mass
/// convolution fast path.
fn point_mass_at(value: f64) -> Histogram1D {
    let width = value.abs().max(1.0) * 1e-15;
    Histogram1D::from_entries(vec![(Bucket::new(value, value + width).unwrap(), 1.0)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sweep_rearrangement_matches_naive(triples in overlapping_triples()) {
        let entries = to_entries(&triples);
        let fast = Histogram1D::from_overlapping(&entries).unwrap();
        let reference = naive::from_overlapping(&entries).unwrap();
        prop_assert!((fast.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let tv = total_variation(&fast, &reference);
        prop_assert!(tv < 1e-12, "total variation {tv}");
    }

    #[test]
    fn pairwise_convolution_matches_naive(
        a in overlapping_triples(),
        b in overlapping_triples(),
        max_buckets in 1usize..80,
    ) {
        let (ha, hb) = (histogram(&a), histogram(&b));
        let fast = convolve_with_limit(&ha, &hb, max_buckets).unwrap();
        let reference = naive::convolve_with_limit(&ha, &hb, max_buckets).unwrap();
        prop_assert!(fast.bucket_count() <= max_buckets.max(1));
        prop_assert_eq!(fast.bucket_count(), reference.bucket_count());
        let tv = total_variation(&fast, &reference);
        prop_assert!(tv < 1e-12, "total variation {tv}");
    }

    #[test]
    fn fold_convolution_matches_naive_and_scratch_is_identical(
        triples in prop::collection::vec((0.0f64..200.0, 0.5f64..30.0, 0.01f64..1.0), 2..6),
        extra in overlapping_triples(),
    ) {
        // A few distinct operand histograms derived from the generated triples.
        let mut hists: Vec<Histogram1D> = triples
            .chunks(2)
            .map(histogram)
            .collect();
        hists.push(histogram(&extra));
        let fast = convolve_many_with_limit(&hists, 48).unwrap();
        let reference = naive::convolve_many_with_limit(&hists, 48).unwrap();
        let tv = total_variation(&fast, &reference);
        prop_assert!(tv < 1e-12, "total variation {tv}");
        // The scratch-threaded fold is the same code path as the
        // thread-local one: bit-for-bit identical.
        let mut scratch = ConvolveScratch::new();
        let threaded = convolve_many_with_scratch(&hists, 48, &mut scratch).unwrap();
        prop_assert_eq!(&fast, &threaded);
        // Scratch reuse must not leak state between folds.
        let again = convolve_many_with_scratch(&hists, 48, &mut scratch).unwrap();
        prop_assert_eq!(&fast, &again);
    }

    #[test]
    fn point_mass_fast_path_matches_naive(
        a in overlapping_triples(),
        value in 1.0f64..400.0,
    ) {
        let ha = histogram(&a);
        let pm = point_mass_at(value);
        for (lhs, rhs) in [(&ha, &pm), (&pm, &ha)] {
            let fast = convolve_with_limit(lhs, rhs, 64).unwrap();
            let reference = naive::convolve_with_limit(lhs, rhs, 64).unwrap();
            let tv = total_variation(&fast, &reference);
            prop_assert!(tv < 1e-12, "total variation {tv}");
            // A point-mass convolution is a pure shift.
            prop_assert!((fast.mean() - (ha.mean() + value)).abs() < 1e-6);
        }
    }

    #[test]
    fn degenerate_and_capped_inputs_match_naive(
        lo in 0.0f64..200.0,
        width in 0.5f64..40.0,
        b in overlapping_triples(),
    ) {
        // Single-bucket operand.
        let single = Histogram1D::uniform(lo, lo + width).unwrap();
        let hb = histogram(&b);
        let fast = convolve_with_limit(&single, &hb, 64).unwrap();
        let reference = naive::convolve_with_limit(&single, &hb, 64).unwrap();
        prop_assert!(total_variation(&fast, &reference) < 1e-12);
        // Max-bucket cap of one: everything collapses to the full support.
        let capped = convolve_with_limit(&single, &hb, 1).unwrap();
        let capped_ref = naive::convolve_with_limit(&single, &hb, 1).unwrap();
        prop_assert_eq!(capped.bucket_count(), 1);
        prop_assert!((capped.min() - capped_ref.min()).abs() < 1e-9);
        prop_assert!((capped.max() - capped_ref.max()).abs() < 1e-9);
        prop_assert!((capped.probs()[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binary_search_cdf_matches_linear_scans(
        triples in overlapping_triples(),
        probes in prop::collection::vec(-50.0f64..500.0, 1..40),
        qs in prop::collection::vec(0.0f64..1.0, 1..40),
    ) {
        let h = histogram(&triples);
        for &x in &probes {
            // Identical accumulation order: bit-for-bit equal.
            prop_assert_eq!(h.prob_leq(x), naive::prob_leq(&h, x));
            prop_assert_eq!(h.pdf_at(x), naive::pdf_at(&h, x));
        }
        for &q in &qs {
            prop_assert_eq!(h.quantile(q), naive::quantile(&h, q));
        }
        prop_assert_eq!(h.quantile(0.0), naive::quantile(&h, 0.0));
        prop_assert_eq!(h.quantile(1.0), naive::quantile(&h, 1.0));
        // prob_within is a CDF difference now: equal within rounding.
        for pair in probes.windows(2) {
            let (lo, hi) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
            let diff = (h.prob_within(lo, hi) - naive::prob_within(&h, lo, hi)).abs();
            prop_assert!(diff < 1e-12, "prob_within({lo}, {hi}) diff {diff}");
        }
    }

    #[test]
    fn heap_coarsen_matches_naive_greedy(
        triples in prop::collection::vec((0.0f64..400.0, 0.5f64..60.0, 0.01f64..1.0), 4..24),
        max_buckets in 1usize..16,
    ) {
        let h = histogram(&triples);
        let fast = h.coarsen(max_buckets);
        let reference = naive::coarsen(&h, max_buckets);
        // Same greedy merge sequence: identical boundaries, bit for bit.
        prop_assert_eq!(fast.bucket_count(), reference.bucket_count());
        for (bf, br) in fast.buckets().iter().zip(reference.buckets()) {
            prop_assert_eq!(bf.lo.to_bits(), br.lo.to_bits());
            prop_assert_eq!(bf.hi.to_bits(), br.hi.to_bits());
        }
        // The naive path re-normalises once more; probabilities agree to
        // rounding.
        for (pf, pr) in fast.probs().iter().zip(reference.probs()) {
            prop_assert!((pf - pr).abs() < 1e-12);
        }
    }
}
