//! The live-update subsystem's correctness oracle: after **any** ingest or
//! retirement, an engine kept current through targeted invalidation
//! (`QueryEngine::apply_update`) must serve answers **bit-identical** to an
//! engine rebuilt from scratch over the current (merged or truncated)
//! trajectory store with a cold cache.
//!
//! Property-tested over dataset seeds, base/ingest split points, batch
//! counts, TTL cut points and retire-then-append interleavings. Every round
//! warms the live engine (so invalidation has real entries to evict —
//! including entries estimated before the update), applies the update, and
//! compares distributions for: the pre-update warm set, the post-update
//! variable set (covering newly added variables), and dead-hour
//! fallback-backed queries (covering survivors). Retirement rounds
//! additionally cover variables *deleted* because their support dropped
//! below β.
//!
//! A separate churn workload pins the dependency index's hygiene invariant:
//! with eviction-time purging, the number of entries it tracks is bounded by
//! the number of *live* cache entries.

use pathcost::core::{HybridConfig, HybridGraph, PathWeightFunction};
use pathcost::live::LiveIngestor;
use pathcost::service::{QueryEngine, QueryRequest, ServiceConfig};
use pathcost::traj::{MatchedTrajectory, Timestamp, TrajectoryStore};
use proptest::prelude::*;
use std::sync::Arc;

/// Queries that pin down the weight function: each variable's own
/// `(path, interval)` anchor (its estimate consumes the variable) plus a
/// dead-hour departure per path (fallback-backed, should usually survive).
fn probe_requests(engine: &QueryEngine<'_>, limit: usize) -> Vec<QueryRequest> {
    let graph = engine.graph();
    let mut requests = Vec::new();
    for var in graph.weights().variables().iter().take(limit) {
        requests.push(QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: engine.canonical_departure(var.interval),
        });
        requests.push(QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: Timestamp::from_day_hms(0, 3, 0, 0),
        });
    }
    requests
}

fn assert_equivalent(
    live: &QueryEngine<'_>,
    oracle: &QueryEngine<'_>,
    requests: &[QueryRequest],
    context: &str,
) {
    for request in requests {
        let a = live.execute(request).expect("live engine answers");
        let b = oracle.execute(request).expect("oracle engine answers");
        let (a, b) = (
            a.response.distribution().expect("distribution response"),
            b.response.distribution().expect("distribution response"),
        );
        assert_eq!(
            a, b,
            "{context}: targeted invalidation diverged from full rebuild for {request:?}"
        );
    }
}

fn check_update_equivalence(seed: u64, split_pct: usize, batches: usize) {
    let (net, full) = pathcost::traj::DatasetPreset::tiny(seed)
        .materialise()
        .unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * split_pct / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let live = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig::default(),
    );
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg.clone()).unwrap();

    let chunk = rest.len().div_ceil(batches).max(1);
    for batch in rest.chunks(chunk) {
        // Warm with the *current* epoch's probes, so the update must evict
        // stale entries (and only those) to stay correct.
        let warm = probe_requests(&live, 10);
        for request in &warm {
            live.execute(request).unwrap();
        }

        let update = ingestor.ingest(batch.to_vec()).unwrap();
        live.apply_update(update).unwrap();

        // Oracle: full rebuild over the merged store, cold cache.
        let oracle_weights = PathWeightFunction::instantiate(&net, ingestor.store(), &cfg).unwrap();
        let oracle = QueryEngine::new(
            Arc::new(HybridGraph::from_parts(&net, oracle_weights, cfg.clone())),
            ServiceConfig::default(),
        );

        let context = format!("seed {seed}, split {split_pct}%, epoch {}", live.epoch());
        assert_equivalent(&live, &oracle, &warm, &context);
        // Probes of the *new* epoch cover newly added variables too.
        assert_equivalent(&live, &oracle, &probe_requests(&oracle, 10), &context);
    }
    assert_eq!(live.epoch(), ingestor.epoch());
}

/// The TTL cut point that retires roughly `pct`% of the current store.
fn ttl_cutoff(store: &TrajectoryStore, pct: usize) -> Timestamp {
    store
        .start_time_at_percentile(pct)
        .expect("store is non-empty")
}

/// The retention oracle: a warm engine taken through retire and append
/// epochs (in either order, controlled by `retire_first`) answers
/// bit-identically to a full rebuild over the truncated/merged store with a
/// flushed (cold) cache after every epoch. Returns the total number of
/// variables the retirement deleted, so callers can assert the downward
/// transition was actually exercised.
fn check_retention_equivalence(seed: u64, ttl_pct: usize, retire_first: bool) -> usize {
    let (net, full) = pathcost::traj::DatasetPreset::tiny(seed)
        .materialise()
        .unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * 80 / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let live = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig::default(),
    );
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg.clone()).unwrap();

    let mut removed_total = 0;
    for step in 0..2 {
        // Warm with the *current* epoch's probes, so the update must evict
        // stale entries (and only those) to stay correct.
        let warm = probe_requests(&live, 10);
        for request in &warm {
            live.execute(request).unwrap();
        }

        let retire_now = (step == 0) == retire_first;
        let update = if retire_now {
            let cutoff = ttl_cutoff(ingestor.store(), ttl_pct);
            let update = ingestor.retire_before(cutoff).unwrap();
            assert!(update.trajectories_retired > 0, "cut point retires data");
            removed_total += update.removed.len();
            update
        } else {
            ingestor.ingest(rest.clone()).unwrap()
        };
        live.apply_update(update).unwrap();

        // Oracle: full rebuild over the current store, cold cache.
        let oracle_weights = PathWeightFunction::instantiate(&net, ingestor.store(), &cfg).unwrap();
        let oracle = QueryEngine::new(
            Arc::new(HybridGraph::from_parts(&net, oracle_weights, cfg.clone())),
            ServiceConfig::default(),
        );

        let context = format!(
            "seed {seed}, ttl {ttl_pct}%, retire_first {retire_first}, epoch {}",
            live.epoch()
        );
        assert_equivalent(&live, &oracle, &warm, &context);
        // Probes of the *new* epoch cover added variables — and, after a
        // retirement, paths whose variable was deleted and must now be
        // estimated from shorter sub-paths or fallbacks.
        assert_equivalent(&live, &oracle, &probe_requests(&oracle, 10), &context);
    }
    assert_eq!(live.epoch(), ingestor.epoch());
    removed_total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn targeted_invalidation_serves_rebuild_identical_answers(
        seed in 400u64..432,
        split_pct in 60usize..95,
        batches in 1usize..4,
    ) {
        check_update_equivalence(seed, split_pct, batches);
    }

    #[test]
    fn retirement_serves_truncated_rebuild_identical_answers(
        seed in 400u64..432,
        ttl_pct in 20usize..70,
        retire_first in 0usize..2,
    ) {
        check_retention_equivalence(seed, ttl_pct, retire_first == 1);
    }
}

/// A deterministic instance of the property, so the oracle is exercised even
/// when the proptest shim's sampling changes.
#[test]
fn targeted_invalidation_equivalence_fixed_case() {
    check_update_equivalence(407, 80, 2);
}

/// Deterministic retention instances covering both interleavings; the heavy
/// cut must actually delete below-β variables, or the downward-transition
/// path silently stops being exercised.
#[test]
fn retirement_equivalence_fixed_cases() {
    let removed = check_retention_equivalence(407, 60, true);
    assert!(
        removed > 0,
        "a 60% TTL cut on the tiny preset must drop variables below β"
    );
    check_retention_equivalence(411, 35, false);
}

/// The dependency index must stay bounded by the *live* cache contents under
/// an ingest/retire/query churn workload: a deliberately tiny LRU cache
/// forces steady capacity evictions, updates land between serving passes,
/// and after every round the number of entries the index tracks may not
/// exceed the entries actually cached (pre-fix, LRU-evicted readers leaked
/// until their variable happened to update).
#[test]
fn dependency_index_stays_bounded_by_live_cache_under_churn() {
    let (net, full) = pathcost::traj::DatasetPreset::tiny(509)
        .materialise()
        .unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * 70 / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let live = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig {
            cache_shards: 2,
            shard_capacity: 6,
            ..ServiceConfig::default()
        },
    );
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg).unwrap();

    let chunk = rest.len().div_ceil(3).max(1);
    let mut batches = rest.chunks(chunk);
    let assert_bounded = |round: usize| {
        let tracked = live.dependency_index().tracked_entries();
        let cached = live.cache().len();
        assert!(
            tracked <= cached,
            "round {round}: dependency index tracks {tracked} entries but only {cached} are cached"
        );
    };
    for round in 0..8 {
        // Serving pass: wide probe set against a 12-entry cache ⇒ heavy LRU
        // churn, every eviction must purge its reader edges.
        for request in probe_requests(&live, 16) {
            live.execute(&request).unwrap();
        }
        assert_bounded(round);
        // Alternate ingest and TTL-retire epochs while serving continues.
        let update = if round % 2 == 0 {
            match batches.next() {
                Some(batch) => ingestor.ingest(batch.to_vec()).unwrap(),
                None => ingestor.ingest(Vec::new()).unwrap(),
            }
        } else {
            ingestor
                .retire_before(ttl_cutoff(ingestor.store(), 15))
                .unwrap()
        };
        live.apply_update(update).unwrap();
        assert_bounded(round);
    }

    let stats = live.stats();
    assert!(
        stats.cache_evictions > 0,
        "the churn workload must exercise LRU evictions"
    );
    assert!(
        stats.invalidation_stale_reader_purges > 0,
        "evictions of recorded readers must purge their dependency edges"
    );
    assert!(
        stats.ingest_trajectories_retired > 0 && stats.ingest_trajectories > 0,
        "churn must both append and retire"
    );
    // Total edge count is likewise bounded: every tracked entry is live, so
    // the edge total cannot exceed live entries × the per-entry read count
    // (a small constant given bounded path length and decomposition depth).
    assert!(live.dependency_index().tracked_readers() >= live.dependency_index().tracked_entries());
}
