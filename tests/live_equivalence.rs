//! The live-update subsystem's correctness oracle: after **any** ingest,
//! an engine kept current through targeted invalidation
//! (`QueryEngine::apply_update`) must serve answers **bit-identical** to an
//! engine rebuilt from scratch over the merged trajectory store with a cold
//! cache.
//!
//! Property-tested over dataset seeds, base/ingest split points and batch
//! counts. Every round warms the live engine (so invalidation has real
//! entries to evict — including entries estimated before the update), applies
//! the update, and compares distributions for: the pre-update warm set, the
//! post-update variable set (covering newly added variables), and dead-hour
//! fallback-backed queries (covering survivors).

use pathcost::core::{HybridConfig, HybridGraph, PathWeightFunction};
use pathcost::live::LiveIngestor;
use pathcost::service::{QueryEngine, QueryRequest, ServiceConfig};
use pathcost::traj::{MatchedTrajectory, Timestamp, TrajectoryStore};
use proptest::prelude::*;
use std::sync::Arc;

/// Queries that pin down the weight function: each variable's own
/// `(path, interval)` anchor (its estimate consumes the variable) plus a
/// dead-hour departure per path (fallback-backed, should usually survive).
fn probe_requests(engine: &QueryEngine<'_>, limit: usize) -> Vec<QueryRequest> {
    let graph = engine.graph();
    let mut requests = Vec::new();
    for var in graph.weights().variables().iter().take(limit) {
        requests.push(QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: engine.canonical_departure(var.interval),
        });
        requests.push(QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: Timestamp::from_day_hms(0, 3, 0, 0),
        });
    }
    requests
}

fn assert_equivalent(
    live: &QueryEngine<'_>,
    oracle: &QueryEngine<'_>,
    requests: &[QueryRequest],
    context: &str,
) {
    for request in requests {
        let a = live.execute(request).expect("live engine answers");
        let b = oracle.execute(request).expect("oracle engine answers");
        let (a, b) = (
            a.response.distribution().expect("distribution response"),
            b.response.distribution().expect("distribution response"),
        );
        assert_eq!(
            a, b,
            "{context}: targeted invalidation diverged from full rebuild for {request:?}"
        );
    }
}

fn check_update_equivalence(seed: u64, split_pct: usize, batches: usize) {
    let (net, full) = pathcost::traj::DatasetPreset::tiny(seed)
        .materialise()
        .unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * split_pct / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let live = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig::default(),
    );
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg.clone()).unwrap();

    let chunk = rest.len().div_ceil(batches).max(1);
    for batch in rest.chunks(chunk) {
        // Warm with the *current* epoch's probes, so the update must evict
        // stale entries (and only those) to stay correct.
        let warm = probe_requests(&live, 10);
        for request in &warm {
            live.execute(request).unwrap();
        }

        let update = ingestor.ingest(batch.to_vec()).unwrap();
        live.apply_update(update).unwrap();

        // Oracle: full rebuild over the merged store, cold cache.
        let oracle_weights = PathWeightFunction::instantiate(&net, ingestor.store(), &cfg).unwrap();
        let oracle = QueryEngine::new(
            Arc::new(HybridGraph::from_parts(&net, oracle_weights, cfg.clone())),
            ServiceConfig::default(),
        );

        let context = format!("seed {seed}, split {split_pct}%, epoch {}", live.epoch());
        assert_equivalent(&live, &oracle, &warm, &context);
        // Probes of the *new* epoch cover newly added variables too.
        assert_equivalent(&live, &oracle, &probe_requests(&oracle, 10), &context);
    }
    assert_eq!(live.epoch(), ingestor.epoch());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn targeted_invalidation_serves_rebuild_identical_answers(
        seed in 400u64..432,
        split_pct in 60usize..95,
        batches in 1usize..4,
    ) {
        check_update_equivalence(seed, split_pct, batches);
    }
}

/// A deterministic instance of the property, so the oracle is exercised even
/// when the proptest shim's sampling changes.
#[test]
fn targeted_invalidation_equivalence_fixed_case() {
    check_update_equivalence(407, 80, 2);
}
