//! The live-update subsystem's correctness oracle: after **any** ingest or
//! retirement, an engine kept current through targeted invalidation
//! (`QueryEngine::apply_update`) must serve answers **bit-identical** to an
//! engine rebuilt from scratch over the current (merged or truncated)
//! trajectory store with a cold cache.
//!
//! Property-tested over dataset seeds, base/ingest split points, batch
//! counts, TTL cut points and retire-then-append interleavings. Every round
//! warms the live engine (so invalidation has real entries to evict —
//! including entries estimated before the update), applies the update, and
//! compares distributions for: the pre-update warm set, the post-update
//! variable set (covering newly added variables), and dead-hour
//! fallback-backed queries (covering survivors). Retirement rounds
//! additionally cover variables *deleted* because their support dropped
//! below β.
//!
//! A separate churn workload pins the dependency index's hygiene invariant:
//! with eviction-time purging, the number of entries it tracks is bounded by
//! the number of *live* cache entries.

use pathcost::core::{HybridConfig, HybridGraph, PathWeightFunction};
use pathcost::live::LiveIngestor;
use pathcost::service::{QueryEngine, QueryRequest, ServiceConfig};
use pathcost::traj::{
    tag_batch, MatchedTrajectory, PeakOffPeak, RegimeClassifier, RegimeId, RegimeSchema, Timestamp,
    TrajectoryStore,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Queries that pin down the weight function: each variable's own
/// `(path, interval)` anchor (its estimate consumes the variable) plus a
/// dead-hour departure per path (fallback-backed, should usually survive).
fn probe_requests(engine: &QueryEngine<'_>, limit: usize) -> Vec<QueryRequest> {
    let graph = engine.graph();
    let mut requests = Vec::new();
    for var in graph.weights().variables().iter().take(limit) {
        requests.push(QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: engine.canonical_departure(var.interval),
            regime: pathcost_service::RegimeId::ALL_TRAFFIC,
        });
        requests.push(QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: Timestamp::from_day_hms(0, 3, 0, 0),
            regime: pathcost_service::RegimeId::ALL_TRAFFIC,
        });
    }
    requests
}

fn assert_equivalent(
    live: &QueryEngine<'_>,
    oracle: &QueryEngine<'_>,
    requests: &[QueryRequest],
    context: &str,
) {
    for request in requests {
        let a = live.execute(request).expect("live engine answers");
        let b = oracle.execute(request).expect("oracle engine answers");
        let (a, b) = (
            a.response.distribution().expect("distribution response"),
            b.response.distribution().expect("distribution response"),
        );
        assert_eq!(
            a, b,
            "{context}: targeted invalidation diverged from full rebuild for {request:?}"
        );
    }
}

fn check_update_equivalence(seed: u64, split_pct: usize, batches: usize) {
    let (net, full) = pathcost::traj::DatasetPreset::tiny(seed)
        .materialise()
        .unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * split_pct / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let live = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig::default(),
    );
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg.clone()).unwrap();

    let chunk = rest.len().div_ceil(batches).max(1);
    for batch in rest.chunks(chunk) {
        // Warm with the *current* epoch's probes, so the update must evict
        // stale entries (and only those) to stay correct.
        let warm = probe_requests(&live, 10);
        for request in &warm {
            live.execute(request).unwrap();
        }

        let update = ingestor.ingest(batch.to_vec()).unwrap();
        live.apply_update(update).unwrap();

        // Oracle: full rebuild over the merged store, cold cache.
        let oracle_weights = PathWeightFunction::instantiate(&net, ingestor.store(), &cfg).unwrap();
        let oracle = QueryEngine::new(
            Arc::new(HybridGraph::from_parts(&net, oracle_weights, cfg.clone())),
            ServiceConfig::default(),
        );

        let context = format!("seed {seed}, split {split_pct}%, epoch {}", live.epoch());
        assert_equivalent(&live, &oracle, &warm, &context);
        // Probes of the *new* epoch cover newly added variables too.
        assert_equivalent(&live, &oracle, &probe_requests(&oracle, 10), &context);
    }
    assert_eq!(live.epoch(), ingestor.epoch());
}

/// The TTL cut point that retires roughly `pct`% of the current store.
fn ttl_cutoff(store: &TrajectoryStore, pct: usize) -> Timestamp {
    store
        .start_time_at_percentile(pct)
        .expect("store is non-empty")
}

/// The retention oracle: a warm engine taken through retire and append
/// epochs (in either order, controlled by `retire_first`) answers
/// bit-identically to a full rebuild over the truncated/merged store with a
/// flushed (cold) cache after every epoch. Returns the total number of
/// variables the retirement deleted, so callers can assert the downward
/// transition was actually exercised.
fn check_retention_equivalence(seed: u64, ttl_pct: usize, retire_first: bool) -> usize {
    let (net, full) = pathcost::traj::DatasetPreset::tiny(seed)
        .materialise()
        .unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * 80 / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let live = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig::default(),
    );
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg.clone()).unwrap();

    let mut removed_total = 0;
    for step in 0..2 {
        // Warm with the *current* epoch's probes, so the update must evict
        // stale entries (and only those) to stay correct.
        let warm = probe_requests(&live, 10);
        for request in &warm {
            live.execute(request).unwrap();
        }

        let retire_now = (step == 0) == retire_first;
        let update = if retire_now {
            let cutoff = ttl_cutoff(ingestor.store(), ttl_pct);
            let update = ingestor.retire_before(cutoff).unwrap();
            assert!(update.trajectories_retired > 0, "cut point retires data");
            removed_total += update.removed.len();
            update
        } else {
            ingestor.ingest(rest.clone()).unwrap()
        };
        live.apply_update(update).unwrap();

        // Oracle: full rebuild over the current store, cold cache.
        let oracle_weights = PathWeightFunction::instantiate(&net, ingestor.store(), &cfg).unwrap();
        let oracle = QueryEngine::new(
            Arc::new(HybridGraph::from_parts(&net, oracle_weights, cfg.clone())),
            ServiceConfig::default(),
        );

        let context = format!(
            "seed {seed}, ttl {ttl_pct}%, retire_first {retire_first}, epoch {}",
            live.epoch()
        );
        assert_equivalent(&live, &oracle, &warm, &context);
        // Probes of the *new* epoch cover added variables — and, after a
        // retirement, paths whose variable was deleted and must now be
        // estimated from shorter sub-paths or fallbacks.
        assert_equivalent(&live, &oracle, &probe_requests(&oracle, 10), &context);
    }
    assert_eq!(live.epoch(), ingestor.epoch());
    removed_total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn targeted_invalidation_serves_rebuild_identical_answers(
        seed in 400u64..432,
        split_pct in 60usize..95,
        batches in 1usize..4,
    ) {
        check_update_equivalence(seed, split_pct, batches);
    }

    #[test]
    fn retirement_serves_truncated_rebuild_identical_answers(
        seed in 400u64..432,
        ttl_pct in 20usize..70,
        retire_first in 0usize..2,
    ) {
        check_retention_equivalence(seed, ttl_pct, retire_first == 1);
    }
}

/// A deterministic instance of the property, so the oracle is exercised even
/// when the proptest shim's sampling changes.
#[test]
fn targeted_invalidation_equivalence_fixed_case() {
    check_update_equivalence(407, 80, 2);
}

/// Deterministic retention instances covering both interleavings; the heavy
/// cut must actually delete below-β variables, or the downward-transition
/// path silently stops being exercised.
#[test]
fn retirement_equivalence_fixed_cases() {
    let removed = check_retention_equivalence(407, 60, true);
    assert!(
        removed > 0,
        "a 60% TTL cut on the tiny preset must drop variables below β"
    );
    check_retention_equivalence(411, 35, false);
}

/// The dependency index must stay bounded by the *live* cache contents under
/// an ingest/retire/query churn workload: a deliberately tiny LRU cache
/// forces steady capacity evictions, updates land between serving passes,
/// and after every round the number of entries the index tracks may not
/// exceed the entries actually cached (pre-fix, LRU-evicted readers leaked
/// until their variable happened to update).
#[test]
fn dependency_index_stays_bounded_by_live_cache_under_churn() {
    let (net, full) = pathcost::traj::DatasetPreset::tiny(509)
        .materialise()
        .unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = full.len() * 70 / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let live = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig {
            cache_shards: 2,
            shard_capacity: 6,
            ..ServiceConfig::default()
        },
    );
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg).unwrap();

    let chunk = rest.len().div_ceil(3).max(1);
    let mut batches = rest.chunks(chunk);
    let assert_bounded = |round: usize| {
        let tracked = live.dependency_index().tracked_entries();
        let cached = live.cache().len();
        assert!(
            tracked <= cached,
            "round {round}: dependency index tracks {tracked} entries but only {cached} are cached"
        );
    };
    for round in 0..8 {
        // Serving pass: wide probe set against a 12-entry cache ⇒ heavy LRU
        // churn, every eviction must purge its reader edges.
        for request in probe_requests(&live, 16) {
            live.execute(&request).unwrap();
        }
        assert_bounded(round);
        // Alternate ingest and TTL-retire epochs while serving continues.
        let update = if round % 2 == 0 {
            match batches.next() {
                Some(batch) => ingestor.ingest(batch.to_vec()).unwrap(),
                None => ingestor.ingest(Vec::new()).unwrap(),
            }
        } else {
            ingestor
                .retire_before(ttl_cutoff(ingestor.store(), 15))
                .unwrap()
        };
        live.apply_update(update).unwrap();
        assert_bounded(round);
    }

    let stats = live.stats();
    assert!(
        stats.cache_evictions > 0,
        "the churn workload must exercise LRU evictions"
    );
    assert!(
        stats.invalidation_stale_reader_purges > 0,
        "evictions of recorded readers must purge their dependency edges"
    );
    assert!(
        stats.ingest_trajectories_retired > 0 && stats.ingest_trajectories > 0,
        "churn must both append and retire"
    );
    // Total edge count is likewise bounded: every tracked entry is live, so
    // the edge total cannot exceed live entries × the per-entry read count
    // (a small constant given bounded path length and decomposition depth).
    assert!(live.dependency_index().tracked_readers() >= live.dependency_index().tracked_entries());
}

// ---------------------------------------------------------------------------
// Regime-keyed weight variables: fallback-ladder oracle, global bit-identity
// and strict-subset invalidation (see REGIMES.md).
// ---------------------------------------------------------------------------

/// The regime schema used by the regime tests: two top-level regimes (peak =
/// 1, off-peak = 2) plus a declared-but-dataless sub-regime 3 grouped under
/// peak, giving a depth-2 fallback ladder `3 → 1 → 0`.
fn regime_schema() -> RegimeSchema {
    RegimeSchema::flat()
        .with_group(RegimeId(1), RegimeId::ALL_TRAFFIC)
        .with_group(RegimeId(2), RegimeId::ALL_TRAFFIC)
        .with_group(RegimeId(3), RegimeId(1))
}

/// A tagged fixture: the tiny preset's trajectories classified peak/off-peak
/// under [`regime_schema`], plus the same store untagged for bit-identity
/// comparisons.
fn tagged_fixture(
    seed: u64,
    beta: usize,
) -> (
    pathcost::roadnet::RoadNetwork,
    TrajectoryStore,
    HybridConfig,
) {
    let (net, store) = pathcost::traj::DatasetPreset::tiny(seed)
        .materialise()
        .unwrap();
    let mut matched = store.matched().to_vec();
    tag_batch(
        &mut matched,
        &PeakOffPeak {
            peak: RegimeId(1),
            off_peak: RegimeId(2),
            ..PeakOffPeak::default()
        },
    );
    let cfg = HybridConfig {
        beta,
        regimes: regime_schema(),
        ..HybridConfig::default()
    };
    (net, TrajectoryStore::new(matched), cfg)
}

fn estimate(engine: &QueryEngine<'_>, request: &QueryRequest) -> pathcost::hist::Histogram1D {
    engine
        .execute(request)
        .expect("engine answers")
        .response
        .distribution()
        .expect("distribution response")
        .clone()
}

/// The hierarchical-fallback oracle: a regime with no own data answers
/// bit-identically to its fallback ancestor. Sub-regime 3 has no tagged
/// trajectories, so every query at regime 3 must resolve through peak's
/// (regime 1's) table — identical histograms, deeper reported fallback. An
/// *undeclared* regime falls all the way to the global function.
#[test]
fn sparse_regime_answers_are_bit_identical_to_their_fallback_ancestor() {
    let (net, store, cfg) = tagged_fixture(407, 10);
    let weights = PathWeightFunction::instantiate(&net, &store, &cfg).unwrap();
    assert!(
        weights.regime_tables().contains_key(&RegimeId(1)),
        "the peak regime must clear β somewhere for the oracle to be non-trivial"
    );
    let engine = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights, cfg)),
        ServiceConfig::default(),
    );
    let graph = engine.graph();
    let mut fallback_depth_seen = 0usize;
    for var in graph.weights().variables().iter().take(12) {
        let at = |regime: RegimeId| QueryRequest::EstimateDistribution {
            path: var.path.clone(),
            departure: engine.canonical_departure(var.interval),
            regime,
        };
        // Dataless sub-regime ≡ its group, bit-identical.
        assert_eq!(
            estimate(&engine, &at(RegimeId(3))),
            estimate(&engine, &at(RegimeId(1))),
            "regime 3 (no data) must resolve through regime 1's table"
        );
        // Undeclared regime ≡ global, bit-identical.
        assert_eq!(
            estimate(&engine, &at(RegimeId(9))),
            estimate(&engine, &at(RegimeId::ALL_TRAFFIC)),
            "an unknown regime must fall back to the global function"
        );
        let outcome = engine.execute(&at(RegimeId(3))).unwrap();
        fallback_depth_seen = fallback_depth_seen.max(outcome.stats.max_fallback_depth);
    }
    assert!(
        fallback_depth_seen > 0,
        "regime-3 estimates must report a non-zero fallback depth"
    );
}

/// The default-regime acceptance gate: with every request at
/// [`RegimeId::ALL_TRAFFIC`], a regime-tagged store answers bit-identically
/// to the untagged store — tagging adds per-regime tables *besides* the
/// global one, it never perturbs it. Cache keys are likewise unchanged
/// (`mix_regime` is the identity at regime 0), pinned here through identical
/// hit/miss accounting on a replayed probe set.
#[test]
fn global_regime_queries_are_bit_identical_to_an_untagged_store() {
    let (net, tagged_store, cfg) = tagged_fixture(411, 10);
    let untagged = TrajectoryStore::new(
        tagged_store
            .matched()
            .iter()
            .map(|m| m.clone().with_regime(RegimeId::ALL_TRAFFIC))
            .collect(),
    );
    let plain_cfg = HybridConfig {
        regimes: RegimeSchema::flat(),
        ..cfg.clone()
    };
    let tagged_weights = PathWeightFunction::instantiate(&net, &tagged_store, &cfg).unwrap();
    let plain_weights = PathWeightFunction::instantiate(&net, &untagged, &plain_cfg).unwrap();
    assert_eq!(
        tagged_weights.variables(),
        plain_weights.variables(),
        "the global variable table must be independent of regime tags"
    );
    let tagged_engine = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, tagged_weights, cfg)),
        ServiceConfig::default(),
    );
    let plain_engine = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, plain_weights, plain_cfg)),
        ServiceConfig::default(),
    );
    let probes = probe_requests(&plain_engine, 12);
    for _pass in 0..2 {
        for request in &probes {
            let a = tagged_engine.execute(request).unwrap();
            let b = plain_engine.execute(request).unwrap();
            assert_eq!(
                a.response.distribution(),
                b.response.distribution(),
                "global-regime answers must be bit-identical to the untagged store"
            );
        }
    }
    let (a, b) = (tagged_engine.stats(), plain_engine.stats());
    assert_eq!(a.cache_hits, b.cache_hits, "identical cache keying");
    assert_eq!(a.cache_misses, b.cache_misses, "identical cache keying");
    assert_eq!(tagged_engine.cache().len(), plain_engine.cache().len());
}

/// Tags everything with one fixed regime — the ingest side of the
/// strict-subset invalidation test.
struct Always(RegimeId);
impl RegimeClassifier for Always {
    fn classify(&self, _m: &MatchedTrajectory) -> RegimeId {
        self.0
    }
}

/// Regime-tagged ingest invalidates a strict subset: peak-tagged arrivals
/// touch the peak and global tables only, so off-peak readers whose
/// variables resolved from off-peak's *own* table keep their cache entries,
/// while global readers of the updated keys are evicted. Equivalence against
/// a full rebuild at every regime guards the survivors' correctness.
#[test]
fn regime_tagged_ingest_invalidates_a_strict_subset_of_readers() {
    // β = 4: the tiny preset's off-peak traffic is sparse, and the test
    // needs off-peak *own-table* unit variables to warm readers against.
    let (net, full, cfg) = tagged_fixture(401, 4);
    let split = full.len() * 70 / 100;
    let base = TrajectoryStore::new(full.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = full.matched()[split..].to_vec();

    let weights = PathWeightFunction::instantiate(&net, &base, &cfg).unwrap();
    let off_peak_units: Vec<_> = weights
        .regime_tables()
        .get(&RegimeId(2))
        .expect("off-peak data must clear β somewhere")
        .iter()
        .filter(|v| v.path.edges().len() == 1)
        .map(|v| (v.path.clone(), v.interval))
        .collect();
    assert!(
        !off_peak_units.is_empty(),
        "need unit variables in the off-peak own table"
    );
    let live = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, weights.clone(), cfg.clone())),
        ServiceConfig::default(),
    );
    let mut ingestor = LiveIngestor::from_instantiated(&net, base, weights, cfg.clone())
        .unwrap()
        .with_classifier(Arc::new(Always(RegimeId(1))));

    // Warm each candidate key at the off-peak regime and globally.
    for (path, interval) in &off_peak_units {
        for regime in [RegimeId(2), RegimeId::ALL_TRAFFIC] {
            live.execute(&QueryRequest::EstimateDistribution {
                path: path.clone(),
                departure: live.canonical_departure(*interval),
                regime,
            })
            .unwrap();
        }
    }

    let update = ingestor.ingest(rest).unwrap();
    assert!(
        update.changed() > 0,
        "the peak-tagged batch must change variables"
    );
    assert!(
        update
            .updated
            .iter()
            .chain(&update.added)
            .chain(&update.removed)
            .all(|(_, _, regime)| *regime != RegimeId(2)),
        "peak-tagged arrivals must never touch the off-peak table"
    );
    // Keys safe to assert survival on: global update only, not added/removed
    // anywhere (additions/removals sweep readers by containment).
    let swept = |path: &pathcost::roadnet::Path| {
        update
            .added
            .iter()
            .chain(&update.removed)
            .any(|(p, _, _)| p.is_subpath_of(path))
    };
    let survivors: Vec<_> = off_peak_units
        .iter()
        .filter(|(path, interval)| {
            !swept(path)
                && update
                    .updated
                    .iter()
                    .any(|(p, iv, r)| p == path && iv == interval && r.is_global())
        })
        .cloned()
        .collect();
    live.apply_update(update).unwrap();

    assert!(
        !survivors.is_empty(),
        "at least one warmed off-peak unit must see a global-table update"
    );
    for (path, interval) in &survivors {
        assert!(
            live.cache().get(path, *interval, RegimeId(2)).is_some(),
            "the off-peak reader resolved from its own table and must survive"
        );
        assert!(
            live.cache()
                .get(path, *interval, RegimeId::ALL_TRAFFIC)
                .is_none(),
            "the global reader of an updated key must be evicted"
        );
    }

    // Survivors must still be *correct*: every regime's answers equal a full
    // rebuild over the merged tagged store with a cold cache.
    let oracle_weights = PathWeightFunction::instantiate(&net, ingestor.store(), &cfg).unwrap();
    let oracle = QueryEngine::new(
        Arc::new(HybridGraph::from_parts(&net, oracle_weights, cfg)),
        ServiceConfig::default(),
    );
    for (path, interval) in &off_peak_units {
        for regime in [RegimeId::ALL_TRAFFIC, RegimeId(1), RegimeId(2), RegimeId(3)] {
            let request = QueryRequest::EstimateDistribution {
                path: path.clone(),
                departure: live.canonical_departure(*interval),
                regime,
            };
            assert_eq!(
                estimate(&live, &request),
                estimate(&oracle, &request),
                "post-update answers at regime {} must match a full rebuild",
                regime.0
            );
        }
    }
}
