//! Property-based tests over the core invariants of the distribution and
//! path machinery, using the public API of the facade crate.

use pathcost::hist::auto::{auto_histogram, AutoConfig};
use pathcost::hist::convolution::convolve;
use pathcost::hist::divergence::{kl_divergence, kl_divergence_histograms};
use pathcost::hist::{Bucket, Histogram1D, HistogramNd, RawDistribution};
use pathcost::roadnet::{GeneratorConfig, Path};
use proptest::prelude::*;

fn arbitrary_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(10.0f64..500.0, 5..120)
}

fn arbitrary_entries() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    // (start, width, mass) triples converted into possibly-overlapping buckets.
    prop::collection::vec((0.0f64..400.0, 1.0f64..80.0, 0.01f64..1.0), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn raw_distribution_probabilities_sum_to_one(samples in arbitrary_samples()) {
        let raw = RawDistribution::from_samples(&samples, 1.0).unwrap();
        let total: f64 = raw.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(raw.min() <= raw.max());
        prop_assert!(raw.mean() >= raw.min() && raw.mean() <= raw.max());
    }

    #[test]
    fn auto_histogram_is_normalised_and_bounded_by_the_samples(samples in arbitrary_samples()) {
        let hist = auto_histogram(&samples, &AutoConfig::default()).unwrap();
        let total: f64 = hist.probs().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // The Auto pipeline may coarsen the working resolution to bound the
        // V-Optimal DP, so allow one resolution step of slack at each end.
        let slack = ((hi - lo) / 100.0).max(1.0);
        prop_assert!(hist.min() >= lo - slack);
        prop_assert!(hist.max() <= hi + (hi - lo).max(1.0) + slack);
        prop_assert!(hist.bucket_count() <= AutoConfig::default().max_buckets);
    }

    #[test]
    fn overlapping_rearrangement_conserves_mass_and_mean(entries in arbitrary_entries()) {
        let overlapping: Vec<(Bucket, f64)> = entries
            .iter()
            .map(|&(lo, width, mass)| (Bucket::new(lo, lo + width).unwrap(), mass))
            .collect();
        let total_mass: f64 = overlapping.iter().map(|(_, m)| *m).sum();
        let expected_mean: f64 = overlapping
            .iter()
            .map(|(b, m)| b.midpoint() * m)
            .sum::<f64>()
            / total_mass;
        let hist = Histogram1D::from_overlapping(&overlapping).unwrap();
        prop_assert!((hist.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((hist.mean() - expected_mean).abs() < 1e-6);
    }

    #[test]
    fn convolution_mean_is_additive_and_support_is_minkowski(
        a in arbitrary_samples(),
        b in arbitrary_samples(),
    ) {
        let ha = auto_histogram(&a, &AutoConfig::default()).unwrap();
        let hb = auto_histogram(&b, &AutoConfig::default()).unwrap();
        let conv = convolve(&ha, &hb).unwrap();
        prop_assert!((conv.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!((conv.mean() - (ha.mean() + hb.mean())).abs() < 1e-6);
        prop_assert!(conv.min() >= ha.min() + hb.min() - 1e-9);
        prop_assert!(conv.max() <= ha.max() + hb.max() + 1e-9);
    }

    #[test]
    fn kl_divergence_is_non_negative_and_zero_on_self(samples in arbitrary_samples()) {
        let hist = auto_histogram(&samples, &AutoConfig::default()).unwrap();
        // Self-divergence is zero up to the smoothing mass added to the
        // approximating distribution.
        prop_assert!(kl_divergence_histograms(&hist, &hist) < 1e-6);
        let uniform = Histogram1D::uniform(hist.min(), hist.max() + 1.0).unwrap();
        prop_assert!(kl_divergence_histograms(&hist, &uniform) >= 0.0);
        prop_assert!(kl_divergence(&[0.3, 0.7], &[0.7, 0.3]) >= 0.0);
    }

    #[test]
    fn joint_histogram_marginalisation_conserves_mass(
        pairs in prop::collection::vec((20.0f64..200.0, 20.0f64..200.0), 20..150)
    ) {
        let samples: Vec<Vec<f64>> = pairs.iter().map(|&(a, b)| vec![a, b]).collect();
        let nd = HistogramNd::from_samples(&samples, &AutoConfig::default()).unwrap();
        let total: f64 = nd.cells().iter().map(|(_, p)| *p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let cost = nd.to_cost_histogram().unwrap();
        prop_assert!((cost.probs().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The cost support is inside the sum of the per-dimension supports.
        prop_assert!(cost.min() >= nd.min_total() - 1e-9);
        prop_assert!(cost.max() <= nd.max_total() + 1e-9);
        // Marginal means add up to the joint's total mean (linearity).
        let m0 = nd.marginal_1d(0).unwrap().mean();
        let m1 = nd.marginal_1d(1).unwrap().mean();
        prop_assert!((cost.mean() - (m0 + m1)).abs() / (m0 + m1) < 0.05);
    }

    #[test]
    fn path_algebra_laws_hold_on_grid_paths(seed in 0u64..500, len in 2usize..8) {
        let net = GeneratorConfig::tiny(seed % 7).generate();
        // Build a simple path by walking successors deterministically.
        let mut edges = vec![net.edges()[(seed as usize) % net.edge_count()].id];
        let mut visited = vec![net.edge(edges[0]).unwrap().from, net.edge(edges[0]).unwrap().to];
        while edges.len() < len {
            let last = *edges.last().unwrap();
            let next = net
                .successors(last)
                .iter()
                .copied()
                .find(|&e| !visited.contains(&net.edge(e).unwrap().to));
            match next {
                Some(e) => {
                    visited.push(net.edge(e).unwrap().to);
                    edges.push(e);
                }
                None => break,
            }
        }
        prop_assume!(edges.len() >= 2);
        let path = Path::new(&net, edges).unwrap();
        // Reflexivity of the sub-path relation.
        prop_assert!(path.is_subpath_of(&path));
        // Every window is a sub-path and is found at the right offset.
        for sub_len in 1..=path.cardinality() {
            for (offset, sub) in path.subpaths_of_length(sub_len).into_iter().enumerate() {
                prop_assert!(sub.is_subpath_of(&path));
                prop_assert!(path.subpath_offset(&sub).is_some());
                let _ = offset;
            }
        }
        // Intersection with itself is itself; difference with itself is empty.
        prop_assert_eq!(path.intersect(&path), Some(path.clone()));
        prop_assert_eq!(path.subtract(&path), None);
        // Prefix + suffix reconstruct the path.
        if path.cardinality() >= 2 {
            let prefix = path.prefix(1).unwrap();
            let suffix = path.suffix(1).unwrap();
            let rebuilt = prefix.concat(&suffix, &net).unwrap();
            prop_assert_eq!(rebuilt, path);
        }
    }
}
