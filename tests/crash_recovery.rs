//! The crash-safety oracle: a process that crashes at an arbitrary point and
//! recovers from disk must be **bit-identical** to one that never crashed.
//!
//! The harness builds a deterministic randomized schedule of ingest /
//! retire-by-ttl / retire-by-id operations, runs it once on a plain
//! [`LiveIngestor`] recording the full state (weight-function variables,
//! stats, fallback units, store rows) at *every* epoch, then re-runs it on a
//! [`PersistentIngestor`] with snapshots sprinkled at random epochs and
//! "crashes" (drops) it at every chosen crash point. Recovery must restore
//! exactly the reference state at the recovered epoch, and continuing the
//! remaining schedule must land bit-identically on the reference final state.
//!
//! Fault injection on top: after a crash the state directory is damaged —
//! bytes flipped at arbitrary offsets, snapshot or journal tails truncated at
//! arbitrary offsets (a torn write), whole generations deleted, both
//! generations corrupted at once. Recovery must never panic, must skip
//! corrupt generations, must truncate torn journal tails back to the last
//! valid record, and must land on the reference state for whatever epoch the
//! surviving bytes support.
//!
//! Set `CRASH_RECOVERY_QUICK=1` to run a reduced schedule (the CI smoke
//! step).

use pathcost::core::{HybridConfig, PathWeightFunction};
use pathcost::live::{LiveIngestor, PersistenceConfig, PersistentIngestor, RetentionConfig};
use pathcost::persist::journal::JOURNAL_MAGIC;
use pathcost::persist::snapshot::list_generations;
use pathcost::persist::RecoveryOutcome;
use pathcost::roadnet::RoadNetwork;
use pathcost::traj::{
    tag_batch, DatasetPreset, MatchedTrajectory, PeakOffPeak, RegimeId, RegimeSchema, Timestamp,
    TrajectoryStore,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic RNG (SplitMix64) — the schedule must be reproducible.
// ---------------------------------------------------------------------------

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

// ---------------------------------------------------------------------------
// Schedule and reference run
// ---------------------------------------------------------------------------

#[derive(Clone)]
enum Op {
    Ingest(Vec<MatchedTrajectory>),
    RetireBefore(Timestamp),
    RetireIds(Vec<u64>),
}

/// Everything that defines the observable state at one epoch.
#[derive(Clone)]
struct RefState {
    weights: Arc<PathWeightFunction>,
    matched: Vec<MatchedTrajectory>,
}

struct Fixture {
    net: RoadNetwork,
    base: TrajectoryStore,
    cfg: HybridConfig,
    ops: Vec<Op>,
    /// `states[e]` is the reference state after epoch `e` (index 0 = base).
    states: Vec<RefState>,
}

fn quick() -> bool {
    std::env::var("CRASH_RECOVERY_QUICK").is_ok_and(|v| v == "1")
}

/// Builds the op schedule *while* running the reference ingestor (retire
/// cutoffs and victim ids depend on the live store), recording per-epoch
/// states.
fn build_fixture(seed: u64, n_ops: usize) -> Fixture {
    let (net, store) = DatasetPreset::tiny(seed).materialise().unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = store.len() * 2 / 5;
    let base = TrajectoryStore::new(store.matched()[..split].to_vec());
    let mut stream: Vec<MatchedTrajectory> = store.matched()[split..].to_vec();

    let mut rng = Rng::new(seed.wrapping_mul(0x1234_5678_9ABC_DEF1));
    let mut reference = LiveIngestor::new(&net, base.clone(), cfg.clone()).unwrap();
    let mut ops = Vec::with_capacity(n_ops);
    let mut states = vec![RefState {
        weights: reference.weights(),
        matched: reference.store().matched().to_vec(),
    }];
    for _ in 0..n_ops {
        let live = reference.store().matched().to_vec();
        let roll = rng.below(10);
        let op = if roll < 7 || live.len() < 4 {
            // Ingest 1–4 fresh trajectories; sometimes re-deliver an already
            // stored one to exercise dedup across the journal replay.
            let take = (1 + rng.below(4)).min(stream.len());
            let mut batch: Vec<MatchedTrajectory> = stream.drain(..take).collect();
            if !live.is_empty() && rng.chance(1, 3) {
                batch.push(live[rng.below(live.len())].clone());
            }
            Op::Ingest(batch)
        } else if roll < 9 {
            let victims: Vec<u64> = (0..1 + rng.below(2))
                .map(|_| live[rng.below(live.len())].id)
                .collect();
            Op::RetireIds(victims)
        } else {
            // Retire the oldest ~15% of what is currently stored.
            let cutoff = reference.store().start_time_at_percentile(15).unwrap();
            Op::RetireBefore(cutoff)
        };
        apply_live(&mut reference, &op);
        ops.push(op);
        states.push(RefState {
            weights: reference.weights(),
            matched: reference.store().matched().to_vec(),
        });
    }
    Fixture {
        net,
        base,
        cfg,
        ops,
        states,
    }
}

fn apply_live(ingestor: &mut LiveIngestor<'_>, op: &Op) {
    match op {
        Op::Ingest(batch) => ingestor.ingest(batch.clone()).unwrap(),
        Op::RetireBefore(cutoff) => ingestor.retire_before(*cutoff).unwrap(),
        Op::RetireIds(ids) => ingestor.retire_ids(ids).unwrap(),
    };
}

fn apply_persistent(ingestor: &mut PersistentIngestor<'_>, op: &Op) {
    match op {
        Op::Ingest(batch) => ingestor.ingest(batch.clone()).unwrap(),
        Op::RetireBefore(cutoff) => ingestor.retire_before(*cutoff).unwrap(),
        Op::RetireIds(ids) => ingestor.retire_ids(ids).unwrap(),
    };
}

/// Bit-exact comparison against the reference state at `epoch`.
fn assert_state(tag: &str, recovered: &PersistentIngestor<'_>, fixture: &Fixture, epoch: u64) {
    let expect = &fixture.states[epoch as usize];
    assert_eq!(recovered.epoch(), epoch, "{tag}: epoch");
    assert_eq!(
        recovered.store().matched(),
        &expect.matched[..],
        "{tag}: store rows at epoch {epoch}"
    );
    let weights = recovered.weights();
    assert_eq!(
        weights.variables(),
        expect.weights.variables(),
        "{tag}: variables at epoch {epoch}"
    );
    assert_eq!(
        weights.stats(),
        expect.weights.stats(),
        "{tag}: stats at epoch {epoch}"
    );
    assert_eq!(
        weights.fallback_units(),
        expect.weights.fallback_units(),
        "{tag}: fallback units at epoch {epoch}"
    );
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pathcost-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Runs the persisted schedule up to `crash_after` epochs, snapshotting at
/// `snapshot_at` (epoch numbers), then "crashes" by dropping the ingestor.
fn run_until_crash(fixture: &Fixture, dir: &Path, crash_after: usize, snapshot_at: &[u64]) {
    let mut p = LiveIngestor::new(&fixture.net, fixture.base.clone(), fixture.cfg.clone())
        .unwrap()
        .with_persistence(dir, PersistenceConfig::default())
        .unwrap();
    for op in &fixture.ops[..crash_after] {
        apply_persistent(&mut p, op);
        if snapshot_at.contains(&p.epoch()) {
            p.snapshot_now().unwrap();
        }
    }
    // Dropping without a final snapshot IS the crash: recovery has only the
    // last published snapshot plus the journal.
}

fn recover<'n>(
    fixture: &'n Fixture,
    dir: &Path,
) -> (PersistentIngestor<'n>, pathcost::live::RecoveryReport) {
    let base = fixture.base.clone();
    PersistentIngestor::recover(
        &fixture.net,
        dir,
        fixture.cfg.clone(),
        RetentionConfig::default(),
        PersistenceConfig::default(),
        move || base,
    )
    .expect("recovery must degrade gracefully, never fail or panic")
}

// ---------------------------------------------------------------------------
// Oracle: clean crashes at every point
// ---------------------------------------------------------------------------

#[test]
fn every_crash_point_recovers_bit_identically_and_continues() {
    let n_ops = if quick() { 6 } else { 12 };
    let seeds: &[u64] = if quick() { &[29] } else { &[29, 53] };
    for &seed in seeds {
        let fixture = build_fixture(seed, n_ops);
        let mut rng = Rng::new(seed ^ 0xDEAD_BEEF);
        for crash_after in 1..=n_ops {
            // A random subset of epochs get snapshots (always ≥ the base
            // snapshot at epoch 0 written by with_persistence).
            let snapshot_at: Vec<u64> = (1..=crash_after as u64)
                .filter(|_| rng.chance(1, 3))
                .collect();
            let dir = temp_dir(&format!("clean-{seed}-{crash_after}"));
            run_until_crash(&fixture, &dir, crash_after, &snapshot_at);

            let (mut recovered, report) = recover(&fixture, &dir);
            assert_eq!(
                report.outcome,
                RecoveryOutcome::Warm,
                "crash at {crash_after}"
            );
            assert_state("clean crash", &recovered, &fixture, crash_after as u64);

            // The recovered process finishes the schedule bit-identically.
            for op in &fixture.ops[crash_after..] {
                apply_persistent(&mut recovered, op);
            }
            assert_state(
                "continued after recovery",
                &recovered,
                &fixture,
                n_ops as u64,
            );
            drop(recovered);
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// The newest `.snap` file in `dir`.
fn latest_snapshot(dir: &Path) -> PathBuf {
    let mut gens = list_generations(dir).unwrap();
    gens.sort_unstable();
    let newest = *gens.last().expect("at least one generation");
    dir.join(format!("snapshot-{newest:016x}.snap"))
}

fn oldest_snapshot(dir: &Path) -> PathBuf {
    let mut gens = list_generations(dir).unwrap();
    gens.sort_unstable();
    let oldest = *gens.first().expect("at least one generation");
    dir.join(format!("snapshot-{oldest:016x}.snap"))
}

fn flip_byte(path: &Path, offset_fraction: f64) {
    let mut bytes = fs::read(path).unwrap();
    let i = ((bytes.len() - 1) as f64 * offset_fraction) as usize;
    bytes[i] ^= 0x40;
    fs::write(path, bytes).unwrap();
}

fn truncate(path: &Path, keep_fraction: f64) {
    let bytes = fs::read(path).unwrap();
    let keep = (bytes.len() as f64 * keep_fraction) as usize;
    fs::write(path, &bytes[..keep]).unwrap();
}

#[test]
fn corruption_degrades_gracefully_never_panics() {
    let n_ops = if quick() { 6 } else { 10 };
    let fixture = build_fixture(41, n_ops);
    let crash_after = n_ops;
    // Two mid-run snapshots → two retained generations plus a journal tail.
    let snap_a = (n_ops / 3) as u64;
    let snap_b = (2 * n_ops / 3) as u64;
    let pristine = temp_dir("pristine");
    run_until_crash(&fixture, &pristine, crash_after, &[snap_a, snap_b]);
    assert_eq!(list_generations(&pristine).unwrap().len(), 2);

    let clone_dir = |tag: &str| -> PathBuf {
        let dir = temp_dir(tag);
        fs::create_dir_all(&dir).unwrap();
        for entry in fs::read_dir(&pristine).unwrap() {
            let entry = entry.unwrap();
            fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
        }
        dir
    };

    // 1. Latest snapshot corrupted (byte flips at several offsets): the
    //    previous generation + journal replay still reach the final epoch.
    for (i, frac) in [0.01, 0.4, 0.99].iter().enumerate() {
        let dir = clone_dir(&format!("flip-snap-{i}"));
        flip_byte(&latest_snapshot(&dir), *frac);
        let (recovered, report) = recover(&fixture, &dir);
        assert_eq!(report.outcome, RecoveryOutcome::Warm);
        assert_eq!(report.corrupt_generations_skipped, 1);
        assert_eq!(report.snapshot_epoch, snap_a);
        assert_state(
            "flipped latest snapshot",
            &recovered,
            &fixture,
            crash_after as u64,
        );
        drop(recovered);
        fs::remove_dir_all(&dir).unwrap();
    }

    // 2. Latest snapshot torn (truncated at arbitrary offsets): same story.
    for (i, frac) in [0.0, 0.3, 0.9].iter().enumerate() {
        let dir = clone_dir(&format!("torn-snap-{i}"));
        truncate(&latest_snapshot(&dir), *frac);
        let (recovered, report) = recover(&fixture, &dir);
        assert_eq!(report.outcome, RecoveryOutcome::Warm);
        assert_state(
            "torn latest snapshot",
            &recovered,
            &fixture,
            crash_after as u64,
        );
        drop(recovered);
        fs::remove_dir_all(&dir).unwrap();
    }

    // 3. Latest snapshot deleted outright.
    {
        let dir = clone_dir("deleted-snap");
        fs::remove_file(latest_snapshot(&dir)).unwrap();
        let (recovered, report) = recover(&fixture, &dir);
        assert_eq!(report.outcome, RecoveryOutcome::Warm);
        assert_eq!(report.snapshot_epoch, snap_a);
        assert_state(
            "deleted latest snapshot",
            &recovered,
            &fixture,
            crash_after as u64,
        );
        drop(recovered);
        fs::remove_dir_all(&dir).unwrap();
    }

    // 4. Older generation corrupted, newest intact: zero impact.
    {
        let dir = clone_dir("flip-old-snap");
        flip_byte(&oldest_snapshot(&dir), 0.5);
        let (recovered, report) = recover(&fixture, &dir);
        assert_eq!(report.outcome, RecoveryOutcome::Warm);
        assert_eq!(report.snapshot_epoch, snap_b);
        assert_state(
            "flipped older snapshot",
            &recovered,
            &fixture,
            crash_after as u64,
        );
        drop(recovered);
        fs::remove_dir_all(&dir).unwrap();
    }

    // 5. Torn journal tail (truncated at many offsets): recovery lands on
    //    the last epoch the surviving records support — always a reference
    //    state, never an error.
    {
        let journal = pristine.join("journal.pcj");
        let full = fs::read(&journal).unwrap();
        let cuts = if quick() { 7 } else { 23 };
        for i in 0..cuts {
            let dir = clone_dir(&format!("torn-journal-{i}"));
            let keep =
                JOURNAL_MAGIC.len() + (full.len() - JOURNAL_MAGIC.len()) * (i + 1) / (cuts + 1);
            fs::write(dir.join("journal.pcj"), &full[..keep]).unwrap();
            let (recovered, report) = recover(&fixture, &dir);
            assert_eq!(report.outcome, RecoveryOutcome::Warm);
            let epoch = recovered.epoch();
            assert!(
                (report.snapshot_epoch..=crash_after as u64).contains(&epoch),
                "cut {i}: recovered epoch {epoch} out of range"
            );
            assert_state(
                &format!("torn journal cut {i}"),
                &recovered,
                &fixture,
                epoch,
            );
            drop(recovered);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    // 6. Byte flips inside the journal: the valid prefix replays, the rest
    //    is dropped — still a reference state.
    for (i, frac) in [0.1, 0.5, 0.95].iter().enumerate() {
        let dir = clone_dir(&format!("flip-journal-{i}"));
        flip_byte(&dir.join("journal.pcj"), *frac);
        let (recovered, report) = recover(&fixture, &dir);
        assert_eq!(report.outcome, RecoveryOutcome::Warm);
        let epoch = recovered.epoch();
        assert_state(&format!("flipped journal {i}"), &recovered, &fixture, epoch);
        drop(recovered);
        fs::remove_dir_all(&dir).unwrap();
    }

    // 7. Every retained generation corrupt AND the journal rotated past
    //    epoch 1: nothing usable — recovery discards and cold-boots from the
    //    bootstrap store without panicking.
    {
        let dir = clone_dir("all-corrupt");
        flip_byte(&latest_snapshot(&dir), 0.5);
        flip_byte(&oldest_snapshot(&dir), 0.5);
        let (recovered, report) = recover(&fixture, &dir);
        assert_eq!(report.outcome, RecoveryOutcome::Discarded);
        assert_state("all generations corrupt", &recovered, &fixture, 0);
        // The discarded lineage was replaced by a fresh, working one.
        assert_eq!(list_generations(&dir).unwrap(), vec![0]);
        drop(recovered);
        fs::remove_dir_all(&dir).unwrap();
    }

    fs::remove_dir_all(&pristine).unwrap();
}

// ---------------------------------------------------------------------------
// Journal-only recovery (no snapshot survives but the journal is complete)
// ---------------------------------------------------------------------------

#[test]
fn journal_only_recovery_replays_the_full_history() {
    let n_ops = if quick() { 4 } else { 8 };
    let fixture = build_fixture(67, n_ops);
    let dir = temp_dir("journal-only");
    // No mid-run snapshots: the only generation is the epoch-0 base written
    // at attach time, so the journal reaches back to epoch 1.
    run_until_crash(&fixture, &dir, n_ops, &[]);
    flip_byte(&latest_snapshot(&dir), 0.5);
    let (recovered, report) = recover(&fixture, &dir);
    assert_eq!(report.outcome, RecoveryOutcome::Warm);
    assert_eq!(report.snapshot_epoch, 0, "no snapshot was usable");
    assert_eq!(report.replayed_records, n_ops as u64);
    assert_state("journal-only", &recovered, &fixture, n_ops as u64);
    drop(recovered);
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// TTL retention across a crash
// ---------------------------------------------------------------------------

#[test]
fn recovery_with_ttl_retention_is_deterministic() {
    let (net, store) = DatasetPreset::tiny(97).materialise().unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let split = store.len() / 2;
    let base = TrajectoryStore::new(store.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = store.matched()[split..].to_vec();
    let mid = rest.len() / 2;
    let watermark = store.start_time_at_percentile(100).unwrap();
    let keep_from = store.start_time_at_percentile(25).unwrap();
    let retention = RetentionConfig {
        max_age: Some(watermark.seconds() - keep_from.seconds()),
    };

    // Reference: never crashes.
    let mut reference = LiveIngestor::new(&net, base.clone(), cfg.clone())
        .unwrap()
        .with_retention(retention)
        .unwrap();
    reference.ingest(rest[..mid].to_vec()).unwrap();
    reference.ingest(rest[mid..].to_vec()).unwrap();

    // Persisted: crash between the two batches.
    let dir = temp_dir("ttl");
    let mut p = LiveIngestor::new(&net, base.clone(), cfg.clone())
        .unwrap()
        .with_retention(retention)
        .unwrap()
        .with_persistence(&dir, PersistenceConfig::default())
        .unwrap();
    p.ingest(rest[..mid].to_vec()).unwrap();
    drop(p);

    let (mut recovered, report) = PersistentIngestor::recover(
        &net,
        &dir,
        cfg,
        retention,
        PersistenceConfig::default(),
        move || base,
    )
    .unwrap();
    assert_eq!(report.outcome, RecoveryOutcome::Warm);
    recovered.ingest(rest[mid..].to_vec()).unwrap();

    assert_eq!(recovered.epoch(), reference.epoch());
    assert_eq!(recovered.store().matched(), reference.store().matched());
    assert_eq!(
        recovered.weights().variables(),
        reference.weights().variables()
    );
    assert_eq!(recovered.weights().stats(), reference.weights().stats());
    drop(recovered);
    fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Regime-tagged lineages: v2 snapshots, journalled tags, v1 compatibility
// ---------------------------------------------------------------------------

/// The regime schema used by the tagged lineage tests: peak and off-peak
/// traffic both group under all-traffic (see REGIMES.md).
fn regime_schema() -> RegimeSchema {
    RegimeSchema::flat()
        .with_group(RegimeId(1), RegimeId::ALL_TRAFFIC)
        .with_group(RegimeId(2), RegimeId::ALL_TRAFFIC)
}

/// A regime-tagged lineage must publish version-2 snapshots, journal ingest
/// tags (op 3), and recover **bit-identically** — regime tables, schema and
/// per-row tags included — then continue to the same final state as a
/// process that never crashed.
#[test]
fn regime_tagged_lineage_recovers_bit_identically() {
    let (net, store) = DatasetPreset::tiny(401).materialise().unwrap();
    let mut matched = store.matched().to_vec();
    tag_batch(
        &mut matched,
        &PeakOffPeak {
            peak: RegimeId(1),
            off_peak: RegimeId(2),
            ..PeakOffPeak::default()
        },
    );
    let cfg = HybridConfig {
        beta: 4,
        regimes: regime_schema(),
        ..HybridConfig::default()
    };
    let split = matched.len() * 2 / 5;
    let base = TrajectoryStore::new(matched[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = matched[split..].to_vec();
    let mid = rest.len() / 2;

    // Reference: same two tagged batches, never crashes.
    let mut reference = LiveIngestor::new(&net, base.clone(), cfg.clone()).unwrap();
    reference.ingest(rest[..mid].to_vec()).unwrap();
    reference.ingest(rest[mid..].to_vec()).unwrap();
    assert!(
        !reference.weights().regime_tables().is_empty(),
        "fixture must clear β in at least one regime-own table"
    );

    let dir = temp_dir("regime-v2");
    {
        let mut p = LiveIngestor::new(&net, base.clone(), cfg.clone())
            .unwrap()
            .with_persistence(&dir, PersistenceConfig::default())
            .unwrap();
        p.ingest(rest[..mid].to_vec()).unwrap();
        p.snapshot_now().unwrap();
        // The tagged store forces the regime sections, which bump the
        // format version.
        let image = fs::read(latest_snapshot(&dir)).unwrap();
        assert_eq!(
            image[7], 2,
            "a regime-tagged lineage must publish version-2 snapshots"
        );
        // Epoch 2 lives only in the journal: its tags ride op-3 records and
        // must survive replay verbatim (recovery attaches no classifier).
        p.ingest(rest[mid..].to_vec()).unwrap();
        // Crash.
    }

    let base_for_recover = base;
    let (recovered, report) = PersistentIngestor::recover(
        &net,
        &dir,
        cfg,
        RetentionConfig::default(),
        PersistenceConfig::default(),
        move || base_for_recover,
    )
    .unwrap();
    assert_eq!(report.outcome, RecoveryOutcome::Warm);
    assert_eq!(report.snapshot_epoch, 1);
    assert_eq!(report.replayed_records, 1);
    assert_eq!(recovered.epoch(), reference.epoch());
    // Store rows compare tags too: MatchedTrajectory equality covers the
    // regime field.
    assert_eq!(recovered.store().matched(), reference.store().matched());
    assert_eq!(
        recovered.weights().variables(),
        reference.weights().variables()
    );
    assert_eq!(
        recovered.weights().regime_tables(),
        reference.weights().regime_tables()
    );
    assert_eq!(
        recovered.weights().regime_schema(),
        reference.weights().regime_schema()
    );
    assert_eq!(recovered.weights().stats(), reference.weights().stats());
    drop(recovered);
    fs::remove_dir_all(&dir).unwrap();
}

/// v1 ↔ v2 compatibility: an untagged deployment under the new code must
/// keep writing byte-version-1 images (so pre-regime readers still accept
/// them), and those v1 images must recover cleanly under a config that
/// declares a regime schema — a v1 image simply decodes as single-regime
/// all-traffic state with empty regime tables.
#[test]
fn untagged_lineage_stays_version1_and_recovers_under_a_regime_schema() {
    let (net, store) = DatasetPreset::tiny(97).materialise().unwrap();
    let cfg = HybridConfig {
        beta: 10,
        regimes: regime_schema(),
        ..HybridConfig::default()
    };
    let split = store.len() / 2;
    let base = TrajectoryStore::new(store.matched()[..split].to_vec());
    let rest: Vec<MatchedTrajectory> = store.matched()[split..].to_vec();

    let mut reference = LiveIngestor::new(&net, base.clone(), cfg.clone()).unwrap();
    reference.ingest(rest.clone()).unwrap();

    let dir = temp_dir("v1-compat");
    {
        let mut p = LiveIngestor::new(&net, base.clone(), cfg.clone())
            .unwrap()
            .with_persistence(&dir, PersistenceConfig::default())
            .unwrap();
        p.ingest(rest).unwrap();
        p.snapshot_now().unwrap();
        let image = fs::read(latest_snapshot(&dir)).unwrap();
        assert_eq!(
            image[7], 1,
            "an all-traffic deployment must keep emitting version-1 images \
             even when the config declares a regime schema"
        );
        // Crash after the snapshot: recovery restores the v1 image directly.
    }

    let base_for_recover = base;
    let (recovered, report) = PersistentIngestor::recover(
        &net,
        &dir,
        cfg,
        RetentionConfig::default(),
        PersistenceConfig::default(),
        move || base_for_recover,
    )
    .unwrap();
    assert_eq!(report.outcome, RecoveryOutcome::Warm);
    assert_eq!(report.snapshot_epoch, 1);
    assert_eq!(recovered.epoch(), reference.epoch());
    assert_eq!(recovered.store().matched(), reference.store().matched());
    assert_eq!(
        recovered.weights().variables(),
        reference.weights().variables()
    );
    assert!(
        recovered.weights().regime_tables().is_empty(),
        "a v1 image decodes as single-regime all-traffic state"
    );
    assert_eq!(recovered.weights().stats(), reference.weights().stats());
    drop(recovered);
    fs::remove_dir_all(&dir).unwrap();
}
