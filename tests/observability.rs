//! End-to-end observability tests against a live HTTP server: the
//! `/metrics` Prometheus exposition (validated with the crate's own strict
//! parser, covering every layer), trace-id propagation (`x-trace-id` echoed,
//! spans retrievable at `/debug/traces`, spans sum bounded by the measured
//! total), the slow-query event log, and the `/healthz` build/uptime fields.
//!
//! See `OBSERVABILITY.md` for the metric inventory and the span model.

use pathcost::core::{HybridConfig, HybridGraph};
use pathcost::obs::expo::validate;
use pathcost::obs::log::logger;
use pathcost::persist::PersistenceStatus;
use pathcost::server::{Json, Server, ServerConfig};
use pathcost::service::{QueryEngine, ServiceConfig};
use pathcost::traj::{DatasetPreset, TrajectoryStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Builds a small engine plus a known-valid `/query` body. The network is
/// leaked so the engine is `'static` (a few KB per test process, once).
fn fixture(seed: u64) -> (QueryEngine<'static>, String) {
    let (net, store) = DatasetPreset::tiny(seed).materialise().unwrap();
    let net = Box::leak(Box::new(net));
    let graph = HybridGraph::build(
        net,
        &store,
        HybridConfig {
            beta: 10,
            ..HybridConfig::default()
        },
    )
    .unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let body = valid_query(&store);
    (engine, body)
}

fn valid_query(store: &TrajectoryStore) -> String {
    let (path, _) = store.frequent_paths(2, 10, None)[0].clone();
    let departure = store.occurrences_on(&path)[0].entry_time;
    let edges: Vec<String> = path.edges().iter().map(|e| e.0.to_string()).collect();
    format!(
        r#"{{"type":"estimate","path":[{}],"departure_s":{}}}"#,
        edges.join(","),
        departure.0
    )
}

/// Boots a server on an ephemeral port, runs `body` against it, then shuts
/// the server down cleanly.
fn with_server<T>(
    config: ServerConfig,
    engine: &QueryEngine,
    body: impl FnOnce(SocketAddr) -> T,
) -> T {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(engine));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(addr)));
        handle.shutdown();
        serving.join().expect("server thread");
        match result {
            Ok(value) => value,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    })
}

/// One-shot exchange returning (status, headers, body).
fn exchange(addr: SocketAddr, raw: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("request write");
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    assert!(
        response.starts_with("HTTP/1.1 "),
        "protocol violation: {response:?}"
    );
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let (headers, body) = response.split_once("\r\n\r\n").expect("header terminator");
    (status, headers.to_string(), body.to_string())
}

fn get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    exchange(addr, raw.as_bytes())
}

fn post(
    addr: SocketAddr,
    target: &str,
    body: &str,
    trace_id: Option<&str>,
) -> (u16, String, String) {
    let trace_header = trace_id
        .map(|id| format!("x-trace-id: {id}\r\n"))
        .unwrap_or_default();
    let raw = format!(
        "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n{trace_header}Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    exchange(addr, raw.as_bytes())
}

/// The echoed `x-trace-id` response header, if any.
fn trace_id_header(headers: &str) -> Option<String> {
    headers.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.trim()
            .eq_ignore_ascii_case("x-trace-id")
            .then(|| value.trim().to_string())
    })
}

/// The value of an exposition series given its full name-plus-labels prefix.
fn series_value(page: &str, series: &str) -> f64 {
    page.lines()
        .find_map(|l| {
            l.strip_prefix(series)?
                .strip_prefix(' ')?
                .trim()
                .parse()
                .ok()
        })
        .unwrap_or_else(|| panic!("series {series:?} missing from exposition:\n{page}"))
}

#[test]
fn metrics_exposition_validates_and_covers_every_layer() {
    let (engine, good_body) = fixture(41);
    // A bare PersistenceStatus is enough to exercise the persistence
    // families — the server only ever reads the shared telemetry handle.
    let status = Arc::new(PersistenceStatus::new());
    status.record_fsync(Duration::from_micros(120));
    let config = ServerConfig {
        persistence: Some(status),
        ..ServerConfig::default()
    };
    with_server(config, &engine, |addr| {
        let (code, _, _) = post(addr, "/query", &good_body, None);
        assert_eq!(code, 200);

        let (code, headers, page) = get(addr, "/metrics");
        assert_eq!(code, 200, "{page}");
        assert!(
            headers
                .to_ascii_lowercase()
                .contains("content-type: text/plain"),
            "exposition must be text/plain: {headers}"
        );
        validate(&page).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{page}"));

        // Every layer shows up on one page.
        for family in [
            "pathcost_build_info",            // build metadata
            "pathcost_http_requests_total",   // server
            "pathcost_request_stage_seconds", // server (trace-fed)
            "pathcost_admission_queue_depth", // admission
            "pathcost_admission_queue_wait_seconds",
            "pathcost_queries_total", // engine
            "pathcost_query_seconds",
            "pathcost_cache_hits_total",     // cache
            "pathcost_ingest_updates_total", // live ingest
            "pathcost_persist_suspended",    // persistence
            "pathcost_persist_fsync_seconds",
        ] {
            assert!(
                page.contains(&format!("# TYPE {family} ")),
                "family {family} missing:\n{page}"
            );
        }
        assert!(
            series_value(&page, "pathcost_persist_fsync_seconds_count") >= 1.0,
            "recorded fsync must show up"
        );

        // Counters advance between scrapes, and /stats agrees with /metrics
        // on the shared single-source-of-truth counters.
        let served = series_value(&page, "pathcost_http_requests_total{class=\"2xx\"}");
        let (code, _, _) = post(addr, "/query", &good_body, None);
        assert_eq!(code, 200);
        let (_, _, page2) = get(addr, "/metrics");
        validate(&page2).unwrap();
        let served2 = series_value(&page2, "pathcost_http_requests_total{class=\"2xx\"}");
        assert!(
            served2 >= served + 2.0, // the extra /query plus the first scrape
            "2xx counter must advance: {served} -> {served2}"
        );

        let (code, _, stats_body) = get(addr, "/stats");
        assert_eq!(code, 200);
        let stats = pathcost::server::json::parse(stats_body.as_bytes()).unwrap();
        let (_, _, page3) = get(addr, "/metrics");
        for (stats_field, series) in [
            (
                "estimate_queries",
                "pathcost_queries_total{kind=\"estimate\"}",
            ),
            ("estimations", "pathcost_estimations_total"),
            ("batches", "pathcost_batches_total"),
        ] {
            let from_stats = stats
                .get(stats_field)
                .and_then(Json::as_u64)
                .unwrap_or_else(|| panic!("/stats lacks {stats_field}: {stats_body}"));
            let from_metrics = series_value(&page3, series);
            assert!(
                (from_metrics - from_stats as f64).abs() < 0.5,
                "{stats_field}={from_stats} but {series}={from_metrics}"
            );
        }
    });
}

#[test]
fn trace_ids_propagate_and_spans_are_retrievable() {
    let (engine, good_body) = fixture(43);
    with_server(ServerConfig::default(), &engine, |addr| {
        // The client's id is echoed verbatim.
        let (code, headers, _) = post(addr, "/query", &good_body, Some("obs-test-trace-1"));
        assert_eq!(code, 200);
        assert_eq!(
            trace_id_header(&headers).as_deref(),
            Some("obs-test-trace-1"),
            "inbound x-trace-id must be echoed: {headers}"
        );

        // Without a client id the server mints a 16-hex one.
        let (code, headers, _) = post(addr, "/query", &good_body, None);
        assert_eq!(code, 200);
        let minted = trace_id_header(&headers).expect("minted trace id echoed");
        assert_eq!(minted.len(), 16, "minted id format: {minted}");
        assert!(minted.chars().all(|c| c.is_ascii_hexdigit()), "{minted}");

        // A hostile id (header-injection attempt) is replaced, not echoed.
        let (code, headers, _) = post(addr, "/query", &good_body, Some("evil\tid"));
        assert_eq!(code, 200);
        let replaced = trace_id_header(&headers).expect("replacement id echoed");
        assert_ne!(replaced, "evil\tid");

        // The finished trace is retrievable with its span breakdown, and
        // the disjoint stages sum to no more than the measured total.
        let (code, _, body) = get(addr, "/debug/traces");
        assert_eq!(code, 200, "{body}");
        let parsed = pathcost::server::json::parse(body.as_bytes()).unwrap();
        let traces = parsed
            .get("traces")
            .and_then(Json::as_array)
            .map(<[Json]>::to_vec)
            .expect("traces array");
        let ours = traces
            .iter()
            .find(|t| t.get("id").and_then(Json::as_str) == Some("obs-test-trace-1"))
            .unwrap_or_else(|| panic!("trace obs-test-trace-1 not in ring: {body}"));
        assert_eq!(ours.get("status").and_then(Json::as_u64), Some(200));
        let total = ours
            .get("total_us")
            .and_then(Json::as_u64)
            .expect("total_us");
        let spans = ours.get("spans_us").expect("spans_us object");
        let eval = spans.get("eval").and_then(Json::as_u64).unwrap_or(0);
        let write = spans.get("write").and_then(Json::as_u64).unwrap_or(0);
        assert!(eval > 0, "eval span must be recorded: {body}");
        assert!(write > 0, "write span must be recorded: {body}");
        let span_sum: u64 = [
            "parse",
            "queue",
            "dispatch",
            "warm",
            "eval",
            "serialize",
            "write",
        ]
        .iter()
        .filter_map(|s| spans.get(s).and_then(Json::as_u64))
        .sum();
        assert!(span_sum > 0);
        // Stages are disjoint slices of the request; allow only clock
        // granularity (one µs per recorded stage) of slack.
        assert!(
            span_sum <= total + 7,
            "span sum {span_sum}µs exceeds total {total}µs: {body}"
        );
    });
}

/// A `Write` sink appending into a shared buffer (captures the event log).
#[derive(Clone)]
struct Capture(Arc<Mutex<Vec<u8>>>);

impl Write for Capture {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn slow_queries_hit_the_event_log_and_the_counter() {
    let (engine, good_body) = fixture(47);
    let config = ServerConfig {
        // Everything is a slow query at threshold zero.
        slow_query_threshold: Some(Duration::ZERO),
        ..ServerConfig::default()
    };
    // Capture the process-global event log. Other tests' events may land in
    // the buffer too; the assertions only require ours to be present.
    let buffer = Arc::new(Mutex::new(Vec::new()));
    logger().set_writer(Some(Box::new(Capture(buffer.clone()))));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        with_server(config, &engine, |addr| {
            let (code, _, _) = post(addr, "/query", &good_body, Some("slow-trace-9"));
            assert_eq!(code, 200);
            let (_, _, page) = get(addr, "/metrics");
            assert!(series_value(&page, "pathcost_slow_queries_total") >= 1.0);
        });
    }));
    logger().set_writer(None);
    if let Err(panic) = outcome {
        std::panic::resume_unwind(panic);
    }

    let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
    let line = text
        .lines()
        .find(|l| l.contains("\"event\":\"slow_query\"") && l.contains("slow-trace-9"))
        .unwrap_or_else(|| panic!("no slow_query event for slow-trace-9 in log:\n{text}"));
    assert!(line.contains("\"component\":\"server\""), "{line}");
    assert!(line.contains("\"level\":\"warn\""), "{line}");
    assert!(line.contains("\"total_us\":"), "{line}");
    assert!(line.contains("\"eval\":"), "{line}");
}

#[test]
fn healthz_reports_version_and_uptime() {
    let (engine, _) = fixture(53);
    with_server(ServerConfig::default(), &engine, |addr| {
        let (code, _, body) = get(addr, "/healthz");
        assert_eq!(code, 200, "{body}");
        let health = pathcost::server::json::parse(body.as_bytes()).unwrap();
        assert_eq!(
            health.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION")),
            "{body}"
        );
        assert!(
            health
                .get("uptime_s")
                .and_then(|v| v.as_f64())
                .is_some_and(|u| u >= 0.0),
            "{body}"
        );
    });
}
