//! Cross-crate integration tests: simulate → map-match → instantiate the
//! hybrid graph → estimate → route, exercising the public API exactly the way
//! the examples and the experiment harness do.

use pathcost::core::{
    CostEstimator, GroundTruthEstimator, HybridConfig, HybridGraph, LbEstimator, OdEstimator,
};
use pathcost::hist::divergence::kl_divergence_histograms;
use pathcost::roadnet::search::{fastest_path, free_flow_time_s};
use pathcost::roadnet::VertexId;
use pathcost::routing::{BestFirstRouter, RouterConfig};
use pathcost::traj::{DatasetPreset, HmmMapMatcher, MapMatchConfig, Timestamp, TrajectoryStore};

fn dense_tiny_store() -> (pathcost::roadnet::RoadNetwork, TrajectoryStore) {
    let mut preset = DatasetPreset::tiny(1234);
    preset.simulation.trips = 600;
    let net = preset.build_network();
    let out = preset.simulate(&net).expect("simulation succeeds");
    (net, TrajectoryStore::from_ground_truth(&out))
}

#[test]
fn full_pipeline_with_map_matching() {
    // The full pipeline including HMM map matching instead of ground truth.
    let mut preset = DatasetPreset::tiny(77);
    preset.simulation.trips = 150;
    let net = preset.build_network();
    let out = preset.simulate(&net).expect("simulation succeeds");
    let matcher = HmmMapMatcher::new(&net, MapMatchConfig::default());
    let matched = matcher.match_all(&out.trajectories);
    assert!(
        matched.len() as f64 >= out.trajectories.len() as f64 * 0.9,
        "map matching should align nearly every trajectory"
    );
    let store = TrajectoryStore::new(matched);
    let graph = HybridGraph::build(
        &net,
        &store,
        HybridConfig {
            beta: 10,
            ..HybridConfig::default()
        },
    )
    .expect("hybrid graph builds from map-matched data");
    assert!(graph.stats().total_variables() > 0);

    let (path, _) = store.frequent_paths(3, 10, None)[0].clone();
    let departure = store.occurrences_on(&path)[0].entry_time;
    let dist = graph
        .estimate(&path, departure)
        .expect("estimation succeeds");
    assert!((dist.probs().iter().sum::<f64>() - 1.0).abs() < 1e-6);
    assert!(dist.mean() > 0.0);
}

#[test]
fn od_estimate_tracks_ground_truth_for_dense_paths() {
    let (net, store) = dense_tiny_store();
    let cfg = HybridConfig {
        beta: 20,
        ..HybridConfig::default()
    };
    let graph = HybridGraph::build(&net, &store, cfg.clone()).expect("hybrid graph builds");
    let gt = GroundTruthEstimator::new(&net, &store, cfg.clone()).expect("gt estimator");
    let od = OdEstimator::new(&graph);

    let mut compared = 0;
    for (path, _) in store.frequent_paths(4, cfg.beta, None).into_iter().take(20) {
        // Ground truth needs ≥ β qualified trajectories in the departure's
        // interval; scan this path's occurrences for a dense departure.
        let Some(departure) = store
            .occurrences_on(&path)
            .into_iter()
            .map(|occ| occ.entry_time)
            .find(|t| gt.qualified_samples(&path, *t).len() >= cfg.beta)
        else {
            continue;
        };
        let Ok(truth) = gt.estimate(&path, departure) else {
            continue;
        };
        let estimate = od
            .estimate(&path, departure)
            .expect("OD estimation succeeds");
        // The estimate must land in the right ballpark: mean within 35% and a
        // bounded divergence from the truth.
        let rel = (estimate.mean() - truth.mean()).abs() / truth.mean();
        assert!(rel < 0.35, "mean off by {rel:.2} on {path}");
        assert!(kl_divergence_histograms(&truth, &estimate).is_finite());
        compared += 1;
    }
    assert!(
        compared >= 3,
        "expected several dense paths, got {compared}"
    );
}

#[test]
fn estimators_expose_distinct_behaviour_on_long_paths() {
    let (net, store) = dense_tiny_store();
    let cfg = HybridConfig {
        beta: 15,
        ..HybridConfig::default()
    };
    let graph = HybridGraph::build(&net, &store, cfg).expect("hybrid graph builds");
    let od = OdEstimator::new(&graph);
    let lb = LbEstimator::new(&graph);

    // Build a long query by extending a frequent path greedily.
    let (seed_path, _) = store.frequent_paths(5, 15, None)[0].clone();
    let departure = store.occurrences_on(&seed_path)[0].entry_time;

    let od_hist = od.estimate(&seed_path, departure).expect("OD estimate");
    let lb_hist = lb.estimate(&seed_path, departure).expect("LB estimate");
    // Both are proper distributions over positive travel times.
    for h in [&od_hist, &lb_hist] {
        assert!((h.probs().iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!(h.min() >= 0.0);
        assert!(h.mean() > 0.0);
    }
    // The OD decomposition must be at least as coarse as LB's, reflected in
    // its H_DE (Theorem 3).
    let h_od = od.decomposition_entropy(&seed_path, departure).unwrap();
    let h_lb = lb.decomposition_entropy(&seed_path, departure).unwrap();
    assert!(h_od <= h_lb + 1e-9);
}

#[test]
fn routing_with_od_estimator_returns_reliable_paths() {
    let (net, store) = dense_tiny_store();
    let graph = HybridGraph::build(
        &net,
        &store,
        HybridConfig {
            beta: 15,
            ..HybridConfig::default()
        },
    )
    .expect("hybrid graph builds");
    let router = BestFirstRouter::new(&graph, RouterConfig::default()).expect("router");
    let od = OdEstimator::new(&graph);

    let source = VertexId(0);
    let destination = VertexId((net.vertex_count() - 1) as u32);
    let departure = Timestamp::from_day_hms(0, 8, 0, 0);
    let free_flow = free_flow_time_s(
        &net,
        &fastest_path(&net, source, destination).expect("reachable"),
    );
    let result = router
        .route(&od, source, destination, departure, free_flow * 3.0)
        .expect("routing succeeds")
        .expect("a feasible path exists");
    assert!(result.probability > 0.5);
    let vertices = result.path.vertices(&net).unwrap();
    assert_eq!(vertices.first(), Some(&source));
    assert_eq!(vertices.last(), Some(&destination));
    // The reported distribution is consistent with a direct estimate.
    let direct = od
        .estimate(&result.path, departure)
        .expect("direct estimation succeeds");
    assert!((direct.mean() - result.distribution.mean()).abs() < 1e-9);
}

#[test]
fn weight_function_statistics_are_coherent_across_alpha_and_beta() {
    let (net, store) = dense_tiny_store();
    let strict = HybridGraph::build(
        &net,
        &store,
        HybridConfig {
            beta: 40,
            ..HybridConfig::default()
        },
    )
    .unwrap();
    let lenient = HybridGraph::build(
        &net,
        &store,
        HybridConfig {
            beta: 10,
            ..HybridConfig::default()
        },
    )
    .unwrap();
    assert!(lenient.stats().total_variables() >= strict.stats().total_variables());
    assert!(lenient.stats().memory_bytes >= strict.stats().memory_bytes);
    assert!(lenient.stats().coverage() >= strict.stats().coverage());
}
