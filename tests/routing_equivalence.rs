//! Naive-vs-optimised router equivalence.
//!
//! The arena-based best-first search (`BestFirstRouter`) must agree with the
//! retained DFS reference (`pathcost_routing::naive::DfsRouter`) whenever
//! both searches run to exhaustion: same best within-budget probability
//! (within 1e-12) and the same best path, modulo exact-probability ties,
//! where the optimised search's deterministic tie-break (lower expected
//! cost, then fewer edges) may legitimately pick a different — never worse —
//! candidate than the DFS's discovery order does.
//!
//! The search space is bounded through `max_path_edges` (both searches
//! truncate identically there) while the expansion/candidate caps are set
//! high enough that neither search stops early; each case asserts that.

use pathcost::core::{HybridConfig, HybridGraph, OdEstimator};
use pathcost::roadnet::search::{fastest_path, free_flow_time_s};
use pathcost::roadnet::VertexId;
use pathcost::routing::naive::DfsRouter;
use pathcost::routing::{BestFirstRouter, RouterConfig};
use pathcost::traj::{DatasetPreset, Timestamp};

/// High caps + a small path-cardinality bound: exhaustive over a finite space.
fn exhaustive_config() -> RouterConfig {
    RouterConfig {
        max_expansions: 2_000_000,
        max_candidates: 1_000_000,
        max_path_edges: 8,
    }
}

#[test]
fn best_first_matches_naive_dfs_on_preset_fixtures() {
    // (preset seed, source, destination, budget multiplier over free flow):
    // nearby and cross-grid pairs, tight through generous budgets, morning
    // and evening departures across two differently-seeded datasets.
    let cases = [
        (91u64, 0u32, 12u32, 1.3, 8u32),
        (91, 0, 12, 2.0, 8),
        (91, 0, 18, 1.5, 17),
        (91, 2, 22, 1.8, 17),
        (81, 0, 12, 1.4, 8),
        (81, 3, 16, 2.5, 8),
    ];
    for (seed, source, destination, budget_mult, hour) in cases {
        let (net, store) = DatasetPreset::tiny(seed).materialise().unwrap();
        let cfg = HybridConfig {
            beta: 10,
            ..HybridConfig::default()
        };
        let graph = HybridGraph::build(&net, &store, cfg).unwrap();
        let od = OdEstimator::new(&graph);
        let config = exhaustive_config();
        let naive = DfsRouter::new(&graph, config.clone()).unwrap();
        let optimised = BestFirstRouter::new(&graph, config.clone()).unwrap();
        let (source, destination) = (VertexId(source), VertexId(destination));
        let departure = Timestamp::from_day_hms(0, hour, 0, 0);
        let Some(ff_path) = fastest_path(&net, source, destination) else {
            panic!("fixture pair {source}->{destination} must be connected");
        };
        let budget = free_flow_time_s(&net, &ff_path) * budget_mult;
        let label = format!("seed {seed}, {source}->{destination}, budget x{budget_mult}");

        let naive_best = naive
            .route(&od, source, destination, departure, budget)
            .unwrap();
        let fast_best = optimised
            .route(&od, source, destination, departure, budget)
            .unwrap();

        match (naive_best, fast_best) {
            (None, None) => {}
            (Some(n), Some(f)) => {
                // Exhaustion: neither search stopped on a cap. The incumbent
                // bound is heuristic (incremental partial estimates versus
                // OD-evaluated candidates — see PERFORMANCE.md §PR 3), so
                // agreement below is an empirical property of these
                // fixtures, not a theorem; a divergence here is a real
                // finding about the pruning rule.
                assert!(
                    n.expansions < config.max_expansions,
                    "{label}: naive capped"
                );
                assert!(
                    f.expansions <= config.max_expansions,
                    "{label}: optimised capped"
                );
                assert!(
                    (n.probability - f.probability).abs() < 1e-12,
                    "{label}: naive P={} vs optimised P={}",
                    n.probability,
                    f.probability
                );
                if n.path != f.path {
                    // An exact-probability tie: the optimised tie-break must
                    // have picked an at-least-as-good candidate.
                    assert!(
                        f.distribution.mean() <= n.distribution.mean() + 1e-9,
                        "{label}: tie broken towards a worse mean ({} vs {})",
                        f.distribution.mean(),
                        n.distribution.mean()
                    );
                } else {
                    assert_eq!(n.path, f.path, "{label}");
                }
            }
            (n, f) => panic!(
                "{label}: feasibility disagreement (naive {:?}, optimised {:?})",
                n.map(|r| r.probability),
                f.map(|r| r.probability)
            ),
        }
    }
}

#[test]
fn tie_breaking_is_deterministic_and_never_worse_than_naive() {
    // A generous budget drives many candidates to P = 1.0; the best-first
    // search must then prefer the lowest expected cost (then fewest edges)
    // and return the identical result on every run.
    let (net, store) = DatasetPreset::tiny(91).materialise().unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let graph = HybridGraph::build(&net, &store, cfg).unwrap();
    let od = OdEstimator::new(&graph);
    let config = exhaustive_config();
    let naive = DfsRouter::new(&graph, config.clone()).unwrap();
    let optimised = BestFirstRouter::new(&graph, config).unwrap();
    let (source, destination) = (VertexId(0), VertexId(12));
    let departure = Timestamp::from_day_hms(0, 8, 0, 0);
    let budget = free_flow_time_s(&net, &fastest_path(&net, source, destination).unwrap()) * 3.0;

    let naive_best = naive
        .route(&od, source, destination, departure, budget)
        .unwrap()
        .expect("generous budget is feasible");
    let first = optimised
        .route(&od, source, destination, departure, budget)
        .unwrap()
        .expect("generous budget is feasible");
    let second = optimised
        .route(&od, source, destination, departure, budget)
        .unwrap()
        .expect("generous budget is feasible");

    assert_eq!(
        first.path, second.path,
        "tie-breaking must be deterministic"
    );
    assert_eq!(first.probability, second.probability);
    assert!((first.probability - naive_best.probability).abs() < 1e-12);
    // The deterministic tie-break prefers the lower expected cost; the DFS
    // keeps whichever P-maximal candidate it discovered first.
    assert!(
        first.distribution.mean() <= naive_best.distribution.mean() + 1e-9,
        "optimised mean {} must not exceed naive mean {}",
        first.distribution.mean(),
        naive_best.distribution.mean()
    );
    if first.distribution.mean() == naive_best.distribution.mean() {
        assert!(first.path.cardinality() <= naive_best.path.cardinality());
    }
}
