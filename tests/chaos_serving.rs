//! Chaos harness: a live HTTP server under deliberately hostile conditions —
//! slowloris readers and writers, mid-request and mid-response disconnects,
//! injected worker panics (`PATHCOST_CHAOS_PANIC_EDGE`), injected persistence
//! IO faults (`pathcost_persist::faults`) and a tight-deadline flood — all
//! while well-behaved clients keep querying.
//!
//! Invariants asserted (see `ROBUSTNESS.md`):
//!
//! * every byte stream the server sends is a well-formed HTTP/1.1 response,
//! * the server keeps answering valid requests throughout every fault phase,
//! * expired-deadline work is shed *before* evaluation and answered 504,
//! * an injected worker panic poisons only its own request (500), never the
//!   batch, the dispatcher or the process,
//! * persistence IO faults degrade to serving-only mode (`/healthz` → 503
//!   with a reason) without losing any published epoch, and full health
//!   returns within one epoch of the faults clearing,
//! * graceful shutdown joins every connection thread (a hung thread deadlocks
//!   the scope and times the test out).
//!
//! Everything here is process-global (env-var failpoint, persist failpoint),
//! so this file holds exactly one `#[test]`. `CHAOS_QUICK=1` runs a reduced
//! schedule (the CI smoke step).

use pathcost::core::{HybridConfig, HybridGraph};
use pathcost::live::RetentionConfig;
use pathcost::live::{LiveIngestor, PersistenceConfig, PersistenceError, PersistentIngestor};
use pathcost::persist::{clear_io_errors, inject_io_errors, RecoveryOutcome};
use pathcost::server::{Json, Server, ServerConfig};
use pathcost::service::{QueryEngine, ServiceConfig};
use pathcost::traj::{DatasetPreset, MatchedTrajectory, TrajectoryStore};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// An edge id far outside any tiny network: requests naming it trip the
/// engine's chaos failpoint and panic inside a worker.
const CHAOS_EDGE: u64 = 4_000_000_000;

fn quick() -> bool {
    std::env::var("CHAOS_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// A valid `/query` body discovered from the store.
fn valid_query(store: &TrajectoryStore) -> String {
    let (path, _) = store.frequent_paths(2, 10, None)[0].clone();
    let departure = store.occurrences_on(&path)[0].entry_time;
    let edges: Vec<String> = path.edges().iter().map(|e| e.0.to_string()).collect();
    format!(
        r#"{{"type":"estimate","path":[{}],"departure_s":{}}}"#,
        edges.join(","),
        departure.0
    )
}

/// One-shot exchange returning the raw response text. Panics on connect
/// failure (the server must keep accepting); read errors return what
/// arrived so far (an abusive exchange may legitimately end in a reset).
fn exchange(addr: SocketAddr, raw: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("server stopped accepting");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(raw).expect("request write");
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    response
}

/// Asserts the response is well-formed HTTP and returns (status, body).
fn check_response(response: &str) -> (u16, String) {
    assert!(
        response.starts_with("HTTP/1.1 "),
        "protocol violation: {response:?}"
    );
    let status: u16 = response
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable status line: {response:?}"));
    let (headers, body) = response
        .split_once("\r\n\r\n")
        .unwrap_or_else(|| panic!("response without header terminator: {response:?}"));
    let content_length: usize = headers
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.trim()
                .eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or_else(|| panic!("response without content-length: {response:?}"));
    assert_eq!(
        body.len(),
        content_length,
        "framing violation: {response:?}"
    );
    (status, body.to_string())
}

fn post(addr: SocketAddr, target: &str, body: &str) -> (u16, String) {
    let raw = format!(
        "POST {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    check_response(&exchange(addr, raw.as_bytes()))
}

fn post_with_deadline(addr: SocketAddr, body: &str, deadline_ms: u64) -> (u16, String) {
    let raw = format!(
        "POST /query HTTP/1.1\r\nHost: t\r\nConnection: close\r\nx-deadline-ms: {deadline_ms}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    check_response(&exchange(addr, raw.as_bytes()))
}

fn get(addr: SocketAddr, target: &str) -> (u16, String) {
    let raw = format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    check_response(&exchange(addr, raw.as_bytes()))
}

/// `/metrics` must stay scrapeable — and strictly valid exposition —
/// through every fault phase; returns the page for content assertions.
fn scrape_metrics(addr: SocketAddr) -> String {
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200, "metrics scrape failed under chaos: {body}");
    pathcost::obs::expo::validate(&body)
        .unwrap_or_else(|e| panic!("invalid exposition under chaos: {e}\n{body}"));
    body
}

fn stats_counter(addr: SocketAddr, field: &str) -> u64 {
    let (status, body) = get(addr, "/stats");
    assert_eq!(status, 200, "{body}");
    pathcost::server::json::parse(body.as_bytes())
        .unwrap()
        .get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("/stats lacks {field}: {body}"))
}

/// One misbehaving-client repertoire iteration against the server. Every
/// response actually read back must be well-formed; most abuse ends in a
/// clean close with no response at all, which is also legal.
fn abuse_round(addr: SocketAddr, good_body: &str, round: usize) {
    match round % 4 {
        // Slowloris reader: start a request line, stall past the read
        // timeout. The server answers 408 (or closes) and frees the thread.
        0 => {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream.write_all(b"GET /sta").unwrap();
            std::thread::sleep(Duration::from_millis(80));
            let mut response = String::new();
            let _ = stream.read_to_string(&mut response);
            if !response.is_empty() {
                let (status, _) = check_response(&response);
                assert_eq!(status, 408, "{response:?}");
            }
        }
        // Mid-request disconnect: vanish with a half-written body.
        1 => {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let _ = stream.write_all(b"POST /query HTTP/1.1\r\nContent-Length: 400\r\n\r\n{\"ty");
            drop(stream);
        }
        // Mid-response disconnect / slow writer: send a complete request,
        // never read the response, vanish. The server's write hits a dead
        // or stalled socket and must give up within the write timeout.
        2 => {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let _ = write!(
                stream,
                "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{good_body}",
                good_body.len()
            );
            drop(stream);
        }
        // Unread response held open: like above but the socket stays open,
        // pinning the connection thread for at most the write timeout.
        _ => {
            let mut stream = TcpStream::connect(addr).expect("connect");
            let _ = write!(
                stream,
                "POST /query HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{good_body}",
                good_body.len()
            );
            std::thread::sleep(Duration::from_millis(50));
            drop(stream);
        }
    }
}

#[test]
fn chaos_serving_survives_hostile_clients_panics_and_io_faults() {
    // Arm the worker-panic failpoint for the whole test; the edge id is far
    // outside the tiny network, so only deliberately poisoned requests trip.
    std::env::set_var("PATHCOST_CHAOS_PANIC_EDGE", CHAOS_EDGE.to_string());

    let (abuse_threads, abuse_rounds, flood) = if quick() { (3, 4, 8) } else { (6, 16, 32) };

    let (net, store) = DatasetPreset::tiny(29).materialise().unwrap();
    let cfg = HybridConfig {
        beta: 10,
        ..HybridConfig::default()
    };
    let graph = HybridGraph::build(&net, &store, cfg.clone()).unwrap();
    let engine = QueryEngine::new(Arc::new(graph), ServiceConfig::default());
    let good_body = valid_query(&store);

    // A persistent ingestor whose status feeds the server's /healthz: the
    // IO-fault leg drives it from full health to serving-only degraded mode
    // and back while the server keeps answering.
    let dir = std::env::temp_dir().join(format!("pathcost-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let half = store.len() / 2;
    let base = TrajectoryStore::new(store.matched()[..half].to_vec());
    let rest: Vec<MatchedTrajectory> = store.matched()[half..].to_vec();
    let mut ingestor = LiveIngestor::new(&net, base, cfg.clone())
        .unwrap()
        .with_persistence(
            &dir,
            PersistenceConfig {
                io_retries: 1,
                io_backoff: Duration::ZERO,
                ..PersistenceConfig::default()
            },
        )
        .unwrap();
    let status = ingestor.status();

    let config = ServerConfig {
        read_timeout: Duration::from_millis(50),
        write_timeout: Duration::from_millis(250),
        persistence: Some(status.clone()),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = server.shutdown_handle();

    let final_epoch = std::thread::scope(|scope| {
        let serving = scope.spawn(|| server.run(&engine));
        let chaos = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // Phase 1 — misbehaving clients interleaved with valid traffic.
            std::thread::scope(|inner| {
                for t in 0..abuse_threads {
                    let good_body = &good_body;
                    inner.spawn(move || {
                        for round in 0..abuse_rounds {
                            abuse_round(addr, good_body, round + t);
                        }
                    });
                }
                // Valid traffic concurrent with the abuse: every answer must
                // be a well-formed 200 with a distribution payload.
                for _ in 0..abuse_rounds {
                    let (code, body) = post(addr, "/query", &good_body);
                    assert_eq!(code, 200, "valid client starved under abuse: {body}");
                    let parsed = pathcost::server::json::parse(body.as_bytes()).unwrap();
                    assert_eq!(
                        parsed.get("type").and_then(Json::as_str),
                        Some("distribution")
                    );
                }
            });

            // Phase 2 — injected worker panics. A poisoned request answers
            // 500; its batch-mates and every later request are unharmed.
            let poison = format!(r#"{{"type":"estimate","path":[{CHAOS_EDGE}],"departure_s":0}}"#);
            for _ in 0..3 {
                let (code, body) = post(addr, "/query", &poison);
                assert_eq!(code, 500, "injected panic must answer 500: {body}");
                let (code, _) = post(addr, "/query", &good_body);
                assert_eq!(code, 200, "server must survive a worker panic");
            }
            let batch = format!(r#"{{"requests":[{good_body},{poison},{good_body}]}}"#);
            let (code, body) = post(addr, "/query/batch", &batch);
            assert_eq!(code, 200, "{body}");
            let results = pathcost::server::json::parse(body.as_bytes())
                .unwrap()
                .get("results")
                .and_then(Json::as_array)
                .map(<[Json]>::to_vec)
                .unwrap();
            assert_eq!(results.len(), 3);
            assert!(results[0].get("distribution").is_some(), "{body}");
            assert!(results[1].get("error").is_some(), "{body}");
            assert!(results[2].get("distribution").is_some(), "{body}");
            assert!(stats_counter(addr, "panicked_queries") >= 4);
            // The exposition stays valid after abuse and contained panics,
            // and agrees with /stats on the panic count.
            let panicked = scrape_metrics(addr)
                .lines()
                .find_map(|l| {
                    l.strip_prefix("pathcost_panicked_queries_total ")?
                        .parse::<f64>()
                        .ok()
                })
                .expect("panicked-queries series on /metrics");
            assert!(panicked >= 4.0, "panics must be visible on /metrics");

            // Phase 3 — tight-deadline flood: already-expired deadlines are
            // shed before evaluation and answered 504.
            let shed_before = stats_counter(addr, "shed_deadline");
            for _ in 0..flood {
                let (code, _) = post_with_deadline(addr, &good_body, 0);
                assert_eq!(code, 504, "expired deadline must answer 504");
            }
            assert!(stats_counter(addr, "shed_deadline") >= shed_before + flood as u64);
            let (code, _) = post_with_deadline(addr, &good_body, 30_000);
            assert_eq!(code, 200);

            // Phase 4 — persistence IO-fault ladder against the live server.
            let (code, body) = get(addr, "/healthz");
            assert_eq!(code, 200, "{body}");
            ingestor.ingest(rest).expect("healthy ingest");
            let healthy_epoch = ingestor.epoch();

            inject_io_errors(1_000);
            ingestor
                .ingest(Vec::new())
                .expect("publish must survive IO faults (serving-only degradation)");
            let suspended_epoch = ingestor.epoch();
            assert_eq!(suspended_epoch, healthy_epoch + 1);
            assert!(status.suspended());
            let (code, body) = get(addr, "/healthz");
            assert_eq!(
                code, 503,
                "suspended persistence must fail /healthz: {body}"
            );
            let health = pathcost::server::json::parse(body.as_bytes()).unwrap();
            assert_eq!(health.get("degraded").and_then(Json::as_bool), Some(true));
            assert!(
                health
                    .get("reason")
                    .and_then(Json::as_str)
                    .is_some_and(|r| r.contains("persistence")),
                "{body}"
            );
            // Queries still answer while persistence is down, and /metrics
            // stays scrapeable, reporting the suspension.
            assert_eq!(post(addr, "/query", &good_body).0, 200);
            let page = scrape_metrics(addr);
            assert!(
                page.contains("pathcost_persist_suspended 1"),
                "suspension must be visible on /metrics"
            );
            assert!(page.contains("pathcost_persist_suspensions_total"));
            // Mutations are refused rather than silently dropped.
            assert!(matches!(
                ingestor.ingest(Vec::new()),
                Err(PersistenceError::Suspended)
            ));

            clear_io_errors();
            ingestor
                .ingest(Vec::new())
                .expect("resume after faults clear");
            assert!(!status.suspended());
            let (code, body) = get(addr, "/healthz");
            assert_eq!(
                code, 200,
                "health must return within one epoch of faults clearing: {body}"
            );

            // Phase 5 — the same server is still fully healthy.
            let (code, body) = post(addr, "/query", &good_body);
            assert_eq!(code, 200, "{body}");
            ingestor.epoch()
        }));
        // Graceful shutdown must join every connection thread even after all
        // that abuse; a hung thread deadlocks this scope and fails the test
        // via the harness timeout.
        handle.shutdown();
        serving.join().expect("server thread");
        match chaos {
            Ok(epoch) => epoch,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    });

    // No published epoch was lost across the whole episode: recovery from
    // disk is warm and lands exactly on the final epoch.
    drop(ingestor);
    let (recovered, report) = PersistentIngestor::recover(
        &net,
        &dir,
        cfg,
        RetentionConfig::default(),
        PersistenceConfig::default(),
        || panic!("warm recovery must not need the bootstrap store"),
    )
    .unwrap();
    assert_eq!(report.outcome, RecoveryOutcome::Warm);
    assert_eq!(recovered.epoch(), final_epoch);
    std::fs::remove_dir_all(&dir).unwrap();
}
