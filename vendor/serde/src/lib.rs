//! Minimal offline stand-in for `serde`.
//!
//! Only the surface the workspace uses is provided: the `Serialize` /
//! `Deserialize` derive macros (no-ops) and same-named marker traits so
//! generic bounds keep compiling. Replace the `vendor/serde*` path
//! dependencies with the real crates when registry access is available.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`; blanket-implemented because the
/// no-op derive emits no impls.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize`; blanket-implemented because
/// the no-op derive emits no impls.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
