//! No-op derive macros standing in for `serde_derive`.
//!
//! The repository is built in an offline environment with no crates.io
//! access, and nothing in the workspace actually serialises data yet — the
//! `#[derive(Serialize, Deserialize)]` attributes exist so the public types
//! are ready for a future wire format. These derives therefore expand to
//! nothing; swap the `vendor/serde*` path dependencies for the real crates
//! once a registry is available.

use proc_macro::TokenStream;

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts (and ignores) `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
