//! Minimal offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`],
//! [`black_box`] and the `criterion_group!` / `criterion_main!` macros — as a
//! plain timing harness: each benchmark is calibrated to a minimum batch
//! duration, sampled `sample_size` times, and reported on stdout as
//! median / mean nanoseconds per iteration. No statistics beyond that, no
//! HTML reports, no regression detection; swap in the real crate when
//! registry access is available.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    min_batch: Duration,
    /// Quick mode (`cargo bench -- --test`, mirroring real criterion): run
    /// every benchmark closure once to prove it executes, skip the timing.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            min_batch: Duration::from_millis(2),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; used as the per-sample batch floor.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.min_batch = d / 10;
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup { c: self, name }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, &id.to_string(), &mut f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs `f` as the benchmark `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.c, &label, &mut f);
        self
    }

    /// Runs `f` with `input` as the benchmark `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.c, &label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (report already printed per benchmark).
    pub fn finish(self) {}
}

/// A function + parameter benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An identifier combining a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An identifier from a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    sample_size: usize,
    min_batch: Duration,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, calibrating the batch size so each sample runs for at least
    /// the configured minimum duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            if start.elapsed() >= self.min_batch || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
    }
}

fn run_one(c: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    if c.test_mode {
        let mut bencher = Bencher {
            sample_size: 1,
            min_batch: Duration::ZERO,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        println!("{label:<48} ok (test mode)");
        return;
    }
    let mut bencher = Bencher {
        sample_size: c.sample_size,
        min_batch: c.min_batch,
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples_ns.is_empty() {
        println!("{label:<48} (no measurement)");
        return;
    }
    let mut sorted = bencher.samples_ns.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    let mean: f64 = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{label:<48} median {:>12} mean {:>12} ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        sorted.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Mirrors criterion's `criterion_group!`: defines a function running every
/// target against one configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors criterion's `criterion_main!`: a `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
