//! Minimal offline stand-in for `rand` 0.8.
//!
//! The workspace is built without registry access, so this crate provides the
//! subset of the `rand` API the codebase uses — [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] over
//! half-open and inclusive ranges, [`Rng::gen_bool`], and
//! [`seq::SliceRandom`] — backed by the xoshiro256++ generator seeded through
//! SplitMix64. The streams differ from the real `rand` crate's (`StdRng` is
//! version-unstable there anyway); everything seeded is still fully
//! deterministic per seed, which is what the synthetic datasets and tests
//! rely on.

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform over all values for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable from the standard distribution ([`Rng::gen`]).
pub trait StandardSample {
    /// Draws one standard-distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types that [`Rng::gen_range`] can sample uniformly between two bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (hi as $wide).wrapping_sub(lo as $wide).wrapping_add(1)
                } else {
                    (hi as $wide).wrapping_sub(lo as $wide)
                } as u64;
                if span == 0 {
                    if inclusive {
                        // lo..=MAX with full span: any 64-bit draw works.
                        return rng.next_u64() as $t;
                    }
                    panic!("cannot sample empty range");
                }
                // Multiply-shift maps a 64-bit draw onto [0, span) with
                // negligible bias for the span sizes used here.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as $wide;
                ((lo as $wide).wrapping_add(offset)) as $t
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = f64::sample_standard(rng) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a single uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_seeds_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo_seen = f64::INFINITY;
        let mut hi_seen = f64::NEG_INFINITY;
        for _ in 0..10_000 {
            let x = rng.gen_range(10.0..20.0);
            assert!((10.0..20.0).contains(&x));
            lo_seen = lo_seen.min(x);
            hi_seen = hi_seen.max(x);
        }
        assert!(lo_seen < 10.5 && hi_seen > 19.5, "{lo_seen} {hi_seen}");
        let y = rng.gen_range(5.0..=5.0);
        assert_eq!(y, 5.0);
    }

    #[test]
    fn integer_ranges_cover_every_value() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..100 {
            let v = rng.gen_range(3u32..=5);
            assert!((3..=5).contains(&v));
        }
        assert_eq!(rng.gen_range(-4i64..-3), -4);
    }

    #[test]
    fn gen_f64_is_uniform_unit() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_and_choose_behave() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        assert!(orig.contains(v.choose(&mut rng).unwrap()));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _ = rng.gen_range(5usize..5);
    }
}
