//! Minimal offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property tests use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header), `prop_assert!`
//! / `prop_assert_eq!` / `prop_assume!`, the [`strategy::Strategy`] trait
//! implemented for numeric ranges, tuples of strategies and
//! [`collection::vec`], and [`test_runner::Config`] (`ProptestConfig`).
//!
//! Semantics versus the real crate: cases are generated from a fixed seed
//! derived from the test name (fully deterministic, no persistence file), a
//! rejected case (`prop_assume!`) is retried up to ten times the case count,
//! and there is **no shrinking** — a failure reports the formatted assertion
//! message only. Swap in the real crate when registry access is available.

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.len.clone());
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and primitive strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty => $via:ident),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.$via(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy_int!(
        usize => usize_in, u64 => u64_in, u32 => u32_in, u16 => u16_in,
        i64 => i64_in, i32 => i32_in
    );

    impl Strategy for Range<f64> {
        type Value = f64;

        fn new_value(&self, rng: &mut TestRng) -> f64 {
            rng.f64_in(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn new_value(&self, rng: &mut TestRng) -> f32 {
            rng.f64_in(self.start as f64..self.end as f64) as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod test_runner {
    //! Configuration, RNG and error plumbing used by the [`proptest!`] macro.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::Range;

    /// Run configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// An assertion failed; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (retried) case.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic per-test RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Seeded deterministically from the test name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(h),
            }
        }

        /// Uniform `usize` in `range`.
        pub fn usize_in(&mut self, range: Range<usize>) -> usize {
            self.inner.gen_range(range)
        }

        /// Uniform `u64` in `range`.
        pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
            self.inner.gen_range(range)
        }

        /// Uniform `u32` in `range`.
        pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
            self.inner.gen_range(range)
        }

        /// Uniform `u16` in `range`.
        pub fn u16_in(&mut self, range: Range<u16>) -> u16 {
            self.inner.gen_range(range)
        }

        /// Uniform `i64` in `range`.
        pub fn i64_in(&mut self, range: Range<i64>) -> i64 {
            self.inner.gen_range(range)
        }

        /// Uniform `i32` in `range`.
        pub fn i32_in(&mut self, range: Range<i32>) -> i32 {
            self.inner.gen_range(range)
        }

        /// Uniform `f64` in `range`.
        pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
            self.inner.gen_range(range)
        }
    }
}

pub mod prelude {
    //! Everything a property test conventionally imports.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Mirrors `proptest::prelude::prop` (module-style access to strategies).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Rejects the current case (it is retried with fresh inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(0.0f64..1.0, 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($config; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::Config::default(); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut passed: u32 = 0;
            let mut attempts: u64 = 0;
            let max_attempts = (config.cases as u64).saturating_mul(10).max(10);
            while passed < config.cases {
                attempts += 1;
                if attempts > max_attempts {
                    panic!(
                        "proptest '{}': too many rejected cases ({} passed of {} wanted)",
                        stringify!($name),
                        passed,
                        config.cases
                    );
                }
                $(
                    let $arg = $crate::strategy::Strategy::new_value(&$strategy, &mut rng);
                )+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' case failed: {}", stringify!($name), msg)
                    }
                }
            }
        }
    )*};
}
